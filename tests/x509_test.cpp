// X.509 tests: names, builder->parse round trips (including the Must-Staple
// extension), signatures, and the chain-validation error taxonomy.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/signer.hpp"
#include "x509/certificate.hpp"
#include "x509/name.hpp"
#include "x509/verify.hpp"

namespace mustaple::x509 {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

util::Rng& rng() {
  static util::Rng instance(20180425);
  return instance;
}

const crypto::KeyPair& ca_key() {
  static const crypto::KeyPair key = crypto::KeyPair::generate_sim(rng());
  return key;
}

const SimTime kNow = util::make_time(2018, 5, 1);

Certificate make_leaf(const std::function<void(CertificateBuilder&)>& tweak =
                          [](CertificateBuilder&) {}) {
  CertificateBuilder builder;
  builder.serial_number(1234)
      .subject(DistinguishedName{"example.com", "", ""})
      .issuer(DistinguishedName{"Test Issuing CA", "Test", "US"})
      .validity(kNow - Duration::days(10), kNow + Duration::days(80))
      .public_key(crypto::KeyPair::generate_sim(rng()).public_key());
  tweak(builder);
  return builder.sign(ca_key());
}

// ------------------------------------------------------------------ name --

TEST(DistinguishedName, ToStringSkipsEmpty) {
  EXPECT_EQ((DistinguishedName{"cn", "", ""}).to_string(), "CN=cn");
  EXPECT_EQ((DistinguishedName{"cn", "org", "US"}).to_string(),
            "CN=cn, O=org, C=US");
}

TEST(DistinguishedName, EncodeDecodeRoundTrip) {
  const DistinguishedName name{"example.com", "Example Org", "DE"};
  asn1::Writer w;
  name.encode(w);
  const Bytes der = w.take();
  asn1::Reader r(der);
  auto tlv = r.expect(asn1::Tag::kSequence);
  ASSERT_TRUE(tlv.ok());
  auto decoded = DistinguishedName::decode(tlv.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), name);
}

TEST(DistinguishedName, DecodeRejectsNonSequence) {
  asn1::Tlv tlv;
  tlv.tag = 0x02;
  EXPECT_FALSE(DistinguishedName::decode(tlv).ok());
}

// ----------------------------------------------------------- certificate --

TEST(Certificate, BuilderParseRoundTrip) {
  const Certificate cert = make_leaf([](CertificateBuilder& b) {
    b.add_ocsp_url("http://ocsp.example/")
        .add_crl_url("http://crl.example/ca.crl")
        .must_staple(true)
        .add_san("www.example.com")
        .ca_issuers_url("http://ca.example/issuer.crt");
  });
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const Certificate& p = parsed.value();
  EXPECT_EQ(p.serial(), cert.serial());
  EXPECT_EQ(p.subject(), cert.subject());
  EXPECT_EQ(p.issuer(), cert.issuer());
  EXPECT_EQ(p.validity().not_before, cert.validity().not_before);
  EXPECT_EQ(p.validity().not_after, cert.validity().not_after);
  EXPECT_EQ(p.public_key(), cert.public_key());
  ASSERT_EQ(p.extensions().ocsp_urls.size(), 1u);
  EXPECT_EQ(p.extensions().ocsp_urls[0], "http://ocsp.example/");
  ASSERT_EQ(p.extensions().crl_urls.size(), 1u);
  EXPECT_EQ(p.extensions().crl_urls[0], "http://crl.example/ca.crl");
  EXPECT_TRUE(p.extensions().must_staple);
  ASSERT_EQ(p.extensions().san_dns.size(), 1u);
  EXPECT_EQ(p.extensions().san_dns[0], "www.example.com");
  EXPECT_EQ(p.extensions().ca_issuers_url.value_or(""),
            "http://ca.example/issuer.crt");
  EXPECT_EQ(p.signature(), cert.signature());
  EXPECT_EQ(p.tbs_der(), cert.tbs_der());
}

TEST(Certificate, ParseRejectsEveryTruncatedPrefix) {
  // The view-based parse path must classify every truncation as an error —
  // never crash, never accept. (Views make out-of-bounds reads easy to get
  // wrong; this sweeps every prefix of a realistic certificate.)
  const Certificate cert = make_leaf([](CertificateBuilder& b) {
    b.add_ocsp_url("http://ocsp.example/").must_staple(true).add_san(
        "www.example.com");
  });
  const Bytes der = cert.encode_der();
  for (std::size_t len = 0; len < der.size(); ++len) {
    const Bytes prefix(der.begin(), der.begin() + static_cast<long>(len));
    EXPECT_FALSE(Certificate::parse(prefix).ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(Certificate::parse(der).ok());
}

TEST(Certificate, ParsedFieldsAreIndependentOfSourceBuffer) {
  // Everything Certificate::parse retains must be an owning copy: mutating
  // (or freeing) the source DER after parse cannot change the result.
  const Certificate cert = make_leaf([](CertificateBuilder& b) {
    b.add_ocsp_url("http://ocsp.example/").must_staple(true);
  });
  Bytes der = cert.encode_der();
  auto parsed = Certificate::parse(der);
  ASSERT_TRUE(parsed.ok());
  const Bytes serial_before = parsed.value().serial();
  const Bytes tbs_before = parsed.value().tbs_der();
  std::fill(der.begin(), der.end(), 0xee);  // scribble over the source
  EXPECT_EQ(parsed.value().serial(), serial_before);
  EXPECT_EQ(parsed.value().tbs_der(), tbs_before);
  EXPECT_EQ(parsed.value().extensions().ocsp_urls[0], "http://ocsp.example/");
  EXPECT_TRUE(parsed.value().extensions().must_staple);
}

TEST(Certificate, DefaultHasNoMustStaple) {
  const Certificate cert = make_leaf();
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().extensions().must_staple);
  EXPECT_FALSE(parsed.value().extensions().supports_ocsp());
}

TEST(Certificate, MustStapleOidOnWire) {
  // The TLS-feature extension OID 1.3.6.1.5.5.7.1.24 encodes as
  // 06 08 2b 06 01 05 05 07 01 18 — it must appear in the DER iff the
  // builder set must_staple.
  const std::string oid_hex = "06082b060105050701" + std::string("18");
  const Certificate with = make_leaf([](CertificateBuilder& b) {
    b.must_staple(true);
  });
  EXPECT_NE(util::to_hex(with.encode_der()).find(oid_hex), std::string::npos);
  const Certificate without = make_leaf();
  EXPECT_EQ(util::to_hex(without.encode_der()).find(oid_hex),
            std::string::npos);
}

TEST(Certificate, MultipleOcspUrls) {
  const Certificate cert = make_leaf([](CertificateBuilder& b) {
    b.add_ocsp_url("http://ocsp1.example/").add_ocsp_url("http://ocsp2.example/");
  });
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().extensions().ocsp_urls.size(), 2u);
}

TEST(Certificate, SignatureVerifies) {
  const Certificate cert = make_leaf();
  EXPECT_TRUE(cert.verify_signature(ca_key().public_key()));
  EXPECT_FALSE(cert.verify_signature(
      crypto::KeyPair::generate_sim(rng()).public_key()));
}

TEST(Certificate, ParsedSignatureVerifies) {
  const Certificate cert = make_leaf();
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().verify_signature(ca_key().public_key()));
}

TEST(Certificate, TamperedDerFailsSignature) {
  const Certificate cert = make_leaf();
  Bytes der = cert.encode_der();
  // Flip a byte inside the TBS (serial area).
  der[10] ^= 0x01;
  auto parsed = Certificate::parse(der);
  if (parsed.ok()) {
    EXPECT_FALSE(parsed.value().verify_signature(ca_key().public_key()));
  }
}

TEST(Certificate, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::parse(util::bytes_of("not a cert")).ok());
  const Bytes empty;
  EXPECT_FALSE(Certificate::parse(empty).ok());
  EXPECT_FALSE(Certificate::parse(util::bytes_of("0")).ok());
}

TEST(Certificate, ValidityChecks) {
  const Certificate cert = make_leaf();
  EXPECT_TRUE(cert.validity().contains(kNow));
  EXPECT_FALSE(cert.is_expired_at(kNow));
  EXPECT_TRUE(cert.is_expired_at(kNow + Duration::days(81)));
  EXPECT_FALSE(cert.validity().contains(kNow - Duration::days(11)));
}

TEST(Certificate, SerialHexAndFingerprint) {
  const Certificate cert = make_leaf();
  EXPECT_EQ(cert.serial_hex(), util::to_hex(cert.serial()));
  EXPECT_EQ(cert.fingerprint().size(), 32u);
  // Parse round trip preserves the encoding, hence the fingerprint.
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(cert.fingerprint(), parsed.value().fingerprint());
}

TEST(CertificateBuilder, RequiresMandatoryFields) {
  CertificateBuilder missing_serial;
  missing_serial.subject(DistinguishedName{"x", "", ""})
      .public_key(ca_key().public_key());
  EXPECT_THROW(missing_serial.sign(ca_key()), std::logic_error);

  CertificateBuilder missing_key;
  missing_key.serial_number(1).subject(DistinguishedName{"x", "", ""});
  EXPECT_THROW(missing_key.sign(ca_key()), std::logic_error);

  CertificateBuilder missing_subject;
  missing_subject.serial_number(1).public_key(ca_key().public_key());
  EXPECT_THROW(missing_subject.sign(ca_key()), std::logic_error);
}

TEST(CertificateBuilder, SerialNumberMinimalWidth) {
  const Certificate small = make_leaf([](CertificateBuilder& b) {
    b.serial_number(5);
  });
  EXPECT_EQ(small.serial(), (Bytes{5}));
  const Certificate wide = make_leaf([](CertificateBuilder& b) {
    b.serial_number(0x0102030405060708ULL);
  });
  EXPECT_EQ(wide.serial(), (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Certificate, RsaSignedCertificateRoundTrip) {
  util::Rng local(99);
  const crypto::KeyPair rsa_ca = crypto::KeyPair::generate_rsa(512, local);
  CertificateBuilder builder;
  builder.serial_number(77)
      .subject(DistinguishedName{"rsa.example", "", ""})
      .issuer(DistinguishedName{"RSA CA", "", ""})
      .validity(kNow - Duration::days(1), kNow + Duration::days(1))
      .public_key(crypto::KeyPair::generate_sim(local).public_key());
  const Certificate cert = builder.sign(rsa_ca);
  EXPECT_EQ(cert.signature_algorithm(), crypto::SignatureAlgorithm::kRsaSha256);
  auto parsed = Certificate::parse(cert.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().verify_signature(rsa_ca.public_key()));
}

// ------------------------------------------------------------ root store --

TEST(RootStore, FindAndContains) {
  RootStore store;
  CertificateBuilder builder;
  const DistinguishedName dn{"Root", "Org", "US"};
  builder.serial_number(1)
      .subject(dn)
      .issuer(dn)
      .validity(kNow - Duration::days(100), kNow + Duration::days(100))
      .public_key(ca_key().public_key())
      .ca(true);
  const Certificate root = builder.sign(ca_key());
  EXPECT_EQ(store.size(), 0u);
  store.add(root);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains_subject(dn.to_string()));
  EXPECT_NE(store.find_issuer(dn), nullptr);
  EXPECT_EQ(store.find_issuer(DistinguishedName{"Other", "", ""}), nullptr);
  // Re-adding the same subject replaces, not duplicates.
  store.add(root);
  EXPECT_EQ(store.size(), 1u);
}

// ------------------------------------------------------------ chain tests --

struct ChainWorld {
  util::Rng rng{7};
  crypto::KeyPair root_key = crypto::KeyPair::generate_sim(rng);
  crypto::KeyPair intermediate_key = crypto::KeyPair::generate_sim(rng);
  crypto::KeyPair leaf_key = crypto::KeyPair::generate_sim(rng);
  DistinguishedName root_dn{"Root CA", "T", "US"};
  DistinguishedName intermediate_dn{"Issuing CA", "T", "US"};
  Certificate root;
  Certificate intermediate;
  Certificate leaf;
  RootStore store;

  ChainWorld() {
    root = CertificateBuilder()
               .serial_number(1)
               .subject(root_dn)
               .issuer(root_dn)
               .validity(kNow - Duration::days(1000), kNow + Duration::days(1000))
               .public_key(root_key.public_key())
               .ca(true)
               .sign(root_key);
    intermediate = CertificateBuilder()
                       .serial_number(2)
                       .subject(intermediate_dn)
                       .issuer(root_dn)
                       .validity(kNow - Duration::days(500),
                                 kNow + Duration::days(500))
                       .public_key(intermediate_key.public_key())
                       .ca(true)
                       .sign(root_key);
    leaf = CertificateBuilder()
               .serial_number(3)
               .subject(DistinguishedName{"site.example", "", ""})
               .issuer(intermediate_dn)
               .validity(kNow - Duration::days(10), kNow + Duration::days(80))
               .public_key(leaf_key.public_key())
               .sign(intermediate_key);
    store.add(root);
  }
};

TEST(VerifyChain, ValidChainPasses) {
  ChainWorld w;
  const auto result = verify_chain({w.leaf, w.intermediate}, w.store, kNow);
  EXPECT_TRUE(result.ok()) << to_string(result.error);
}

TEST(VerifyChain, FullChainWithRootPasses) {
  ChainWorld w;
  const auto result =
      verify_chain({w.leaf, w.intermediate, w.root}, w.store, kNow);
  EXPECT_TRUE(result.ok()) << to_string(result.error);
}

TEST(VerifyChain, EmptyChainFails) {
  ChainWorld w;
  EXPECT_EQ(verify_chain({}, w.store, kNow).error, ChainError::kEmptyChain);
}

TEST(VerifyChain, ExpiredLeafFails) {
  ChainWorld w;
  const auto result = verify_chain({w.leaf, w.intermediate}, w.store,
                                   kNow + Duration::days(100));
  EXPECT_EQ(result.error, ChainError::kExpired);
  EXPECT_EQ(result.failing_index, 0u);
}

TEST(VerifyChain, NotYetValidLeafFails) {
  ChainWorld w;
  const auto result = verify_chain({w.leaf, w.intermediate}, w.store,
                                   kNow - Duration::days(20));
  EXPECT_EQ(result.error, ChainError::kNotYetValid);
}

TEST(VerifyChain, UntrustedRootFails) {
  ChainWorld w;
  RootStore empty;
  EXPECT_EQ(verify_chain({w.leaf, w.intermediate}, empty, kNow).error,
            ChainError::kUntrustedRoot);
}

TEST(VerifyChain, BadLeafSignatureFails) {
  ChainWorld w;
  // Leaf re-signed by the WRONG key (claims intermediate as issuer).
  const Certificate forged =
      CertificateBuilder()
          .serial_number(9)
          .subject(DistinguishedName{"evil.example", "", ""})
          .issuer(w.intermediate_dn)
          .validity(kNow - Duration::days(1), kNow + Duration::days(1))
          .public_key(w.leaf_key.public_key())
          .sign(w.leaf_key);  // not the intermediate's key
  const auto result = verify_chain({forged, w.intermediate}, w.store, kNow);
  EXPECT_EQ(result.error, ChainError::kBadSignature);
  EXPECT_EQ(result.failing_index, 0u);
}

TEST(VerifyChain, IssuerNameMismatchFails) {
  ChainWorld w;
  const Certificate mismatched =
      CertificateBuilder()
          .serial_number(10)
          .subject(DistinguishedName{"x.example", "", ""})
          .issuer(DistinguishedName{"Somebody Else", "", ""})
          .validity(kNow - Duration::days(1), kNow + Duration::days(1))
          .public_key(w.leaf_key.public_key())
          .sign(w.intermediate_key);
  EXPECT_EQ(verify_chain({mismatched, w.intermediate}, w.store, kNow).error,
            ChainError::kIssuerMismatch);
}

TEST(VerifyChain, NonCaIntermediateFails) {
  ChainWorld w;
  // An intermediate without the CA basic constraint.
  const Certificate bogus_intermediate =
      CertificateBuilder()
          .serial_number(11)
          .subject(w.intermediate_dn)
          .issuer(w.root_dn)
          .validity(kNow - Duration::days(1), kNow + Duration::days(1))
          .public_key(w.intermediate_key.public_key())
          .sign(w.root_key);  // note: no .ca(true)
  const Certificate leaf =
      CertificateBuilder()
          .serial_number(12)
          .subject(DistinguishedName{"y.example", "", ""})
          .issuer(w.intermediate_dn)
          .validity(kNow - Duration::days(1), kNow + Duration::days(1))
          .public_key(w.leaf_key.public_key())
          .sign(w.intermediate_key);
  EXPECT_EQ(
      verify_chain({leaf, bogus_intermediate}, w.store, kNow).error,
      ChainError::kIntermediateNotCa);
}

TEST(VerifyChain, SelfSignedTrustedRootAlonePasses) {
  ChainWorld w;
  EXPECT_TRUE(verify_chain({w.root}, w.store, kNow).ok());
}

TEST(VerifyChain, SelfSignedUntrustedFails) {
  ChainWorld w;
  util::Rng local(55);
  const crypto::KeyPair key = crypto::KeyPair::generate_sim(local);
  const DistinguishedName dn{"Rogue Root", "", ""};
  const Certificate rogue = CertificateBuilder()
                                .serial_number(1)
                                .subject(dn)
                                .issuer(dn)
                                .validity(kNow - Duration::days(1),
                                          kNow + Duration::days(1))
                                .public_key(key.public_key())
                                .ca(true)
                                .sign(key);
  EXPECT_EQ(verify_chain({rogue}, w.store, kNow).error,
            ChainError::kUntrustedRoot);
}

TEST(VerifyChain, ExpiredRootInStoreFails) {
  ChainWorld w;
  EXPECT_EQ(verify_chain({w.leaf, w.intermediate}, w.store,
                         kNow + Duration::days(999))
                .error,
            ChainError::kExpired);
}

TEST(ChainErrorStrings, AllNamed) {
  for (ChainError e :
       {ChainError::kOk, ChainError::kEmptyChain, ChainError::kExpired,
        ChainError::kNotYetValid, ChainError::kBadSignature,
        ChainError::kIssuerMismatch, ChainError::kIntermediateNotCa,
        ChainError::kUntrustedRoot}) {
    EXPECT_STRNE(to_string(e), "unknown");
  }
}

}  // namespace
}  // namespace mustaple::x509
