// Tests for the introspection server (obs/introspect.hpp). The routing
// core (handle()) is exercised socket-free on every platform; on Linux the
// server is additionally started on an ephemeral loopback port and scraped
// through real TCP connections — request framing, all four routes,
// Connection: close semantics, sequential connections, and malformed
// input. Compiles and passes under MUSTAPLE_OBS_OFF (plain classes only).
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/health.hpp"
#include "obs/introspect.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "util/alloc.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace mustaple::obs {
namespace {

net::HttpRequest get(const std::string& path) {
  net::HttpRequest request;
  request.method = "GET";
  request.path = path;
  return request;
}

TEST(IntrospectHandle, RoutesWithoutASocket) {
  Registry registry;
  registry.counter("mustaple_test_total").inc(7);
  IntrospectionServer server;
  server.add_registry("test", &registry);

  const net::HttpResponse health = server.handle(get("/healthz"));
  EXPECT_EQ(health.status_code, 200);
  EXPECT_EQ(util::text_of(health.body), "ok\n");

  const net::HttpResponse metrics = server.handle(get("/metrics"));
  EXPECT_EQ(metrics.status_code, 200);
  EXPECT_NE(util::text_of(metrics.body).find("mustaple_test_total 7"),
            std::string::npos);

  const net::HttpResponse statusz = server.handle(get("/statusz"));
  EXPECT_EQ(statusz.status_code, 200);
  EXPECT_NE(util::text_of(statusz.body).find("mustaple statusz"),
            std::string::npos);

  EXPECT_EQ(server.handle(get("/")).status_code, 200);
  EXPECT_EQ(server.handle(get("/nope")).status_code, 404);

  net::HttpRequest post = get("/metrics");
  post.method = "POST";
  EXPECT_EQ(server.handle(post).status_code, 405);
}

TEST(IntrospectHandle, StatuszIncludesProviderProfilerAndAllocSections) {
  // The allocations section lists registered counters; make sure one exists.
  util::alloc_counter("test.introspect_statusz").record_alloc(64);
  Profiler profiler;
  {
    ProfScope scope("statusz-phase", profiler);
  }
  IntrospectionServer server;
  server.set_profiler(&profiler);
  server.set_status_provider(
      [] { return std::string("campaign: 3/7 steps\n"); });
  const std::string body =
      util::text_of(server.handle(get("/statusz")).body);
  EXPECT_NE(body.find("campaign: 3/7 steps"), std::string::npos);
  EXPECT_NE(body.find("statusz-phase"), std::string::npos);
  EXPECT_NE(body.find("allocations"), std::string::npos);
}

TEST(IntrospectHandle, HealthzReflectsAttachedMonitor) {
  std::atomic<bool> healthy{true};
  HealthMonitor health;
  health.add_check("test.flip", HealthSeverity::kCritical, [&healthy] {
    HealthCheckResult result;
    result.ok = healthy.load();
    if (!result.ok) result.detail = "flipped";
    return result;
  });
  health.evaluate_checks();

  IntrospectionServer server;
  server.set_health(&health);

  const net::HttpResponse ok = server.handle(get("/healthz"));
  EXPECT_EQ(ok.status_code, 200);
  const std::string ok_body = util::text_of(ok.body);
  EXPECT_NE(ok_body.find("mustaple-health/1"), std::string::npos);
  EXPECT_NE(ok_body.find("\"status\":\"ok\""), std::string::npos);

  healthy = false;
  health.evaluate_checks();
  const net::HttpResponse sick = server.handle(get("/healthz"));
  EXPECT_EQ(sick.status_code, 503);
  EXPECT_NE(util::text_of(sick.body).find("\"status\":\"critical\""),
            std::string::npos);

  // /statusz grows a health section when a monitor is attached.
  const std::string statusz = util::text_of(server.handle(get("/statusz")).body);
  EXPECT_NE(statusz.find("health"), std::string::npos);
  EXPECT_NE(statusz.find("test.flip"), std::string::npos);
}

#if defined(__linux__)

// Blocking loopback client: one request, read to EOF (the server always
// closes after responding), return the raw response text.
std::string fetch_raw(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct timeval tv {5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string fetch(std::uint16_t port, const std::string& path) {
  return fetch_raw(port, "GET " + path +
                             " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                             "Connection: close\r\n\r\n");
}

TEST(IntrospectServer, ServesOverARealLoopbackSocket) {
  Registry registry;
  registry.counter("mustaple_live_total").inc(3);
  registry.gauge("mustaple_live_gauge").set(1.5);
  IntrospectionServer server;  // port 0: kernel-assigned
  server.add_registry("live", &registry);
  server.set_status_provider([] { return std::string("live provider\n"); });

  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(server.running());
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string health = fetch(port, "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(health.find("connection: close"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  const std::string metrics = fetch(port, "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("mustaple_live_total 3"), std::string::npos);
  EXPECT_NE(metrics.find("mustaple_live_gauge 1.5"), std::string::npos);

  const std::string statusz = fetch(port, "/statusz");
  EXPECT_NE(statusz.find("mustaple statusz"), std::string::npos);
  EXPECT_NE(statusz.find("live provider"), std::string::npos);

  EXPECT_EQ(fetch(port, "/missing").rfind("HTTP/1.1 404", 0), 0u);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectServer, HandlesSequentialConnectionsAndSeesFreshValues) {
  Registry registry;
  IntrospectionServer server;
  server.add_registry("seq", &registry);
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  for (int i = 1; i <= 3; ++i) {
    registry.counter("mustaple_seq_total").inc();
    const std::string body = fetch(port, "/metrics");
    EXPECT_NE(body.find("mustaple_seq_total " + std::to_string(i)),
              std::string::npos)
        << body;
  }
  server.stop();
}

TEST(IntrospectServer, RejectsMalformedRequestsWith400) {
  IntrospectionServer server;
  ASSERT_TRUE(server.start().ok());
  const std::string response =
      fetch_raw(server.port(), "NOT-EVEN-HTTP\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u) << response;
  server.stop();
}

TEST(IntrospectServer, StopIsIdempotentAndRestartable) {
  IntrospectionServer server;
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t first_port = server.port();
  EXPECT_NE(first_port, 0);
  server.stop();
  server.stop();
  // A second server can bind afterwards (the fds really closed).
  IntrospectionServer second;
  ASSERT_TRUE(second.start().ok());
  EXPECT_NE(second.port(), 0);
  second.stop();
}

TEST(IntrospectServer, SlowClientIsAnswered408OnTimeout) {
  IntrospectionServer::Options options;
  options.read_timeout_ms = 100;
  IntrospectionServer server(options);
  ASSERT_TRUE(server.start().ok());
  // An incomplete request (no terminating blank line) that then stalls:
  // the deadline sweep must answer 408 rather than pin the slot forever.
  const std::string response =
      fetch_raw(server.port(), "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 408", 0), 0u) << response;
  server.stop();
}

TEST(IntrospectServer, OversizedRequestHeadIsRejectedWith431) {
  IntrospectionServer::Options options;
  options.max_request_bytes = 256;
  IntrospectionServer server(options);
  ASSERT_TRUE(server.start().ok());
  const std::string response = fetch_raw(
      server.port(), "GET /metrics HTTP/1.1\r\nx-padding: " +
                         std::string(1024, 'a') + "\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 431", 0), 0u) << response;
  server.stop();
}

TEST(IntrospectServer, OversizedBodyCannotBypassTheCap) {
  IntrospectionServer::Options options;
  options.max_request_bytes = 256;
  IntrospectionServer server(options);
  ASSERT_TRUE(server.start().ok());
  // A small, parseable head declaring a huge body, followed by body bytes
  // past the cap: the Content-Length path must 431 too, not buffer forever.
  const std::string response = fetch_raw(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Length: 100000\r\n\r\n" +
          std::string(1024, 'b'));
  EXPECT_EQ(response.rfind("HTTP/1.1 431", 0), 0u) << response;
  server.stop();
}

TEST(IntrospectServer, HealthzTurns503OverTheWireOnCriticalBreach) {
  std::atomic<bool> healthy{true};
  HealthMonitor health;
  health.add_check("live.flip", HealthSeverity::kCritical, [&healthy] {
    HealthCheckResult result;
    result.ok = healthy.load();
    return result;
  });
  health.evaluate_checks();

  IntrospectionServer server;
  server.set_health(&health);
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  const std::string ok = fetch(port, "/healthz");
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(ok.find("application/json"), std::string::npos);
  EXPECT_NE(ok.find("mustaple-health/1"), std::string::npos);

  healthy = false;
  health.evaluate_checks();
  const std::string sick = fetch(port, "/healthz");
  EXPECT_EQ(sick.rfind("HTTP/1.1 503", 0), 0u) << sick;
  EXPECT_NE(sick.find("\"status\":\"critical\""), std::string::npos);
  server.stop();
}

TEST(IntrospectServer, FixedPortConflictFailsWithStableCode) {
  IntrospectionServer first;
  ASSERT_TRUE(first.start().ok());
  IntrospectionServer::Options options;
  options.port = first.port();
  IntrospectionServer second(options);
  const util::Status status = second.start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "introspect.bind");
  first.stop();
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace mustaple::obs
