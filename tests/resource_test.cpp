// Tests for the resource monitor (obs/resource.hpp): raw usage reads,
// tick-driven sampling, gauge mirroring into the monitor's own registry,
// allocation-counter integration, the sample cap, and the CSV/JSON
// exports. Uses the classes directly so the file compiles and passes under
// MUSTAPLE_OBS_OFF too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/resource.hpp"
#include "util/alloc.hpp"

namespace mustaple::obs {
namespace {

TEST(ResourceUsage, ReadReportsLiveNumbersOnSupportedPlatforms) {
  const ResourceUsage usage = read_resource_usage();
#if defined(__linux__)
  ASSERT_TRUE(usage.ok);
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GT(usage.peak_rss_bytes, 0u);
  EXPECT_GT(usage.vm_bytes, 0u);
  EXPECT_GE(usage.user_cpu_seconds + usage.system_cpu_seconds, 0.0);
#else
  (void)usage;  // best-effort elsewhere; ok may be false
#endif
}

TEST(ResourceUsage, PeakRssIsMonotoneAcrossReads) {
  const ResourceUsage before = read_resource_usage();
  // Touch a real allocation so the second read has at least as much history.
  std::vector<char> block(4 * 1024 * 1024, 1);
  ASSERT_EQ(block[block.size() / 2], 1);
  const ResourceUsage after = read_resource_usage();
  if (before.ok && after.ok) {
    EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes);
  }
}

TEST(ResourceMonitor, SampleNowRecordsARowAndMirrorsGauges) {
  ResourceMonitor monitor;
  const ResourceMonitor::Sample sample = monitor.sample_now();
  ASSERT_EQ(monitor.samples().size(), 1u);
#if defined(__linux__)
  EXPECT_GT(sample.usage.rss_bytes, 0u);
  EXPECT_GT(monitor.registry().gauge("mustaple_proc_rss_bytes").value(), 0.0);
  EXPECT_GT(
      monitor.registry().gauge("mustaple_proc_peak_rss_bytes").value(), 0.0);
#else
  (void)sample;
#endif
}

TEST(ResourceMonitor, TickSamplingAppendsRowsWithNonDecreasingWallTime) {
  ResourceMonitor::Options options;
  options.tick_ms = 5;
  ResourceMonitor monitor(options);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  monitor.stop();
  const auto samples = monitor.samples();
  // start() takes a baseline, stop() a final row, and the 5ms tick should
  // have landed several more in a 60ms window (timing-loose on purpose).
  EXPECT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].wall_ms, samples[i - 1].wall_ms);
  }
}

TEST(ResourceMonitor, StartAndStopAreIdempotentAndStopSafeWithoutStart) {
  ResourceMonitor monitor;
  monitor.stop();  // never started: must be a no-op
  monitor.start();
  monitor.start();  // already running: no second thread
  EXPECT_TRUE(monitor.running());
  monitor.stop();
  monitor.stop();
  EXPECT_FALSE(monitor.running());
}

TEST(ResourceMonitor, RunningIsSafeToPollWhileTicking) {
  // Regression: running() used to read running_ without the monitor mutex;
  // pollers (the introspection /status handler) race the tick thread. The
  // assertions are loose — the value of this test is under TSan.
  ResourceMonitor::Options options;
  options.tick_ms = 1;
  ResourceMonitor monitor(options);
  monitor.start();
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) (void)monitor.running();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(monitor.running());
  monitor.stop();
  stop.store(true);
  poller.join();
  EXPECT_FALSE(monitor.running());
}

TEST(ResourceMonitor, SamplesIncludeNamedAllocationCounters) {
  util::AllocCounter& counter = util::alloc_counter("test.resource_monitor");
  counter.reset();
  counter.record_alloc(1'000'000);
  ResourceMonitor monitor;
  const ResourceMonitor::Sample sample = monitor.sample_now();
  EXPECT_GE(sample.alloc_outstanding_bytes, 1'000'000u);
  EXPECT_GE(monitor.registry()
                .gauge("mustaple_alloc_outstanding_bytes",
                       {{"subsystem", "test.resource_monitor"}})
                .value(),
            1'000'000.0);
  counter.record_free(1'000'000);
}

TEST(ResourceMonitor, MaxSamplesBoundsTimelineAndCountsDrops) {
  ResourceMonitor::Options options;
  options.max_samples = 2;
  ResourceMonitor monitor(options);
  for (int i = 0; i < 5; ++i) monitor.sample_now();
  EXPECT_EQ(monitor.samples().size(), 2u);
  EXPECT_EQ(monitor.dropped(), 3u);
}

TEST(ResourceMonitor, TimelineStaysBoundedUnderLongTicking) {
  ResourceMonitor::Options options;
  options.tick_ms = 1;
  options.max_samples = 3;
  ResourceMonitor monitor(options);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  monitor.stop();
  // Many more ticks happened than fit; the retained timeline never grows
  // past the cap and everything elided is accounted for.
  EXPECT_EQ(monitor.samples().size(), 3u);
  EXPECT_GE(monitor.dropped(), 1u);
}

TEST(ResourceMonitor, OnSampleHookFiresForEverySampleTaken) {
  std::atomic<int> fired{0};
  ResourceMonitor::Options options;
  options.tick_ms = 5;
  options.on_sample = [&fired](const ResourceMonitor::Sample& sample) {
    EXPECT_GE(sample.wall_ms, 0.0);
    fired.fetch_add(1);
  };
  ResourceMonitor monitor(options);
  monitor.start();  // baseline sample fires the hook immediately
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  monitor.stop();  // final sample fires it again
  const int after_run = fired.load();
  EXPECT_GE(after_run, 2);
  monitor.sample_now();  // stopped monitors still fire the hook
  EXPECT_EQ(fired.load(), after_run + 1);
}

TEST(ResourceMonitor, CsvHeaderAndRowCountMatchSamples) {
  ResourceMonitor monitor;
  monitor.sample_now();
  monitor.sample_now();
  const std::string csv = monitor.render_csv();
  const std::string header =
      "wall_ms,rss_bytes,peak_rss_bytes,vm_bytes,minor_faults,major_faults,"
      "user_cpu_s,system_cpu_s,alloc_outstanding_bytes";
  ASSERT_EQ(csv.rfind(header + "\n", 0), 0u);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + monitor.samples().size());
}

TEST(ResourceMonitor, JsonCarriesSchemaSummaryAndSamples) {
  ResourceMonitor monitor;
  monitor.sample_now();
  const std::string json = monitor.render_json();
  EXPECT_EQ(json.rfind("{\"schema\":\"mustaple-resources/1\",", 0), 0u);
  EXPECT_NE(json.find("\"summary\":{"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(ResourceMonitor, CustomRegistryReceivesTheGauges) {
  Registry registry;
  ResourceMonitor::Options options;
  options.registry = &registry;
  ResourceMonitor monitor(options);
  monitor.sample_now();
  EXPECT_EQ(&monitor.registry(), &registry);
#if defined(__linux__)
  EXPECT_GT(registry.gauge("mustaple_proc_rss_bytes").value(), 0.0);
#endif
}

}  // namespace
}  // namespace mustaple::obs
