// Tests for the extension features beyond the paper's 2018 baseline:
// base64 / OCSP-over-GET (RFC 6960 Appendix A), the OCSP nonce (§4.4.1 and
// its tension with pre-generated responses), RFC 6961 multi-stapling, the
// responder's issuer-hash check, and the browser CRL fallback.
#include <gtest/gtest.h>

#include "browser/browser.hpp"
#include "ca/authority.hpp"
#include "ca/crl_server.hpp"
#include "ca/responder.hpp"
#include "ocsp/request.hpp"
#include "ocsp/verify.hpp"
#include "util/base64.hpp"
#include "webserver/webserver.hpp"

namespace mustaple {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 6, 15);

// ---------------------------------------------------------------- base64 --

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(util::base64_encode(util::bytes_of("")), "");
  EXPECT_EQ(util::base64_encode(util::bytes_of("f")), "Zg==");
  EXPECT_EQ(util::base64_encode(util::bytes_of("fo")), "Zm8=");
  EXPECT_EQ(util::base64_encode(util::bytes_of("foo")), "Zm9v");
  EXPECT_EQ(util::base64_encode(util::bytes_of("foob")), "Zm9vYg==");
  EXPECT_EQ(util::base64_encode(util::bytes_of("fooba")), "Zm9vYmE=");
  EXPECT_EQ(util::base64_encode(util::bytes_of("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(util::base64_decode("Zm9vYmFy").value(), util::bytes_of("foobar"));
  EXPECT_EQ(util::base64_decode("Zg==").value(), util::bytes_of("f"));
  EXPECT_EQ(util::base64_decode("").value(), Bytes{});
}

TEST(Base64, RejectsBadInput) {
  EXPECT_FALSE(util::base64_decode("a").ok());         // 1 mod 4
  EXPECT_FALSE(util::base64_decode("ab!c").ok());      // bad character
  EXPECT_FALSE(util::base64_decode("Zh==").ok());      // nonzero trailing bits
}

TEST(Base64, UrlSafeUsesDifferentAlphabet) {
  const Bytes data = {0xfb, 0xff, 0xfe};
  const std::string standard = util::base64_encode(data);
  const std::string url_safe = util::base64url_encode(data);
  EXPECT_NE(standard.find('+'), std::string::npos);
  EXPECT_EQ(url_safe.find('+'), std::string::npos);
  EXPECT_EQ(url_safe.find('='), std::string::npos);  // unpadded
  EXPECT_EQ(util::base64url_decode(url_safe).value(), data);
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, BothAlphabets) {
  util::Rng rng(GetParam() + 99);
  Bytes data(GetParam());
  rng.fill(data.data(), data.size());
  EXPECT_EQ(util::base64_decode(util::base64_encode(data)).value(), data);
  EXPECT_EQ(util::base64url_decode(util::base64url_encode(data)).value(), data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 17, 64, 255,
                                           1000));

// --------------------------------------------------------------- fixture --

struct ExtWorld {
  util::Rng rng{404};
  net::EventLoop loop{kNow - Duration::days(1)};
  net::Network network{loop, 404};
  ca::CertificateAuthority authority{"ExtCA", kNow - Duration::days(900), rng};
  x509::RootStore roots;

  ExtWorld() { roots.add(authority.root_cert()); }

  x509::Certificate issue(const std::string& domain, bool must_staple = false) {
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = kNow - Duration::days(10);
    request.lifetime = Duration::days(90);
    request.must_staple = must_staple;
    request.ocsp_urls = {"http://ocsp.ext.example/"};
    request.crl_urls = {"http://crl.ext.example/ca.crl"};
    return authority.issue(request, rng);
  }

  ocsp::CertId id_for(const x509::Certificate& leaf) {
    return ocsp::CertId::for_certificate(leaf, authority.intermediate_cert());
  }
};

// ----------------------------------------------------------------- nonce --

TEST(Nonce, RequestRoundTrip) {
  ExtWorld w;
  const auto leaf = w.issue("n.example");
  ocsp::OcspRequest request = ocsp::OcspRequest::single(w.id_for(leaf));
  request.set_nonce({1, 2, 3, 4, 5, 6, 7, 8});
  auto parsed = ocsp::OcspRequest::parse(request.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed.value().nonce().has_value());
  EXPECT_EQ(*parsed.value().nonce(), (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Nonce, ResponseRoundTrip) {
  ExtWorld w;
  const auto leaf = w.issue("n2.example");
  ocsp::SingleResponse single;
  single.cert_id = w.id_for(leaf);
  single.status = ocsp::CertStatus::kGood;
  single.this_update = kNow - Duration::hours(1);
  single.next_update = kNow + Duration::days(1);
  const auto response = ocsp::OcspResponseBuilder()
                            .produced_at(kNow)
                            .add_single(single)
                            .nonce({9, 9, 9})
                            .sign(w.authority.intermediate_key());
  auto parsed = ocsp::OcspResponse::parse(response.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed.value().nonce().has_value());
  EXPECT_EQ(*parsed.value().nonce(), (Bytes{9, 9, 9}));
}

TEST(Nonce, OnDemandResponderEchoesNonce) {
  ExtWorld w;
  ca::ResponderBehavior behavior;
  behavior.pre_generate = false;
  ca::OcspResponder responder(w.authority, behavior, "ocsp.ext.example", w.rng);
  const auto leaf = w.issue("n3.example");
  const Bytes nonce = {0xaa, 0xbb, 0xcc};
  const Bytes body = responder.build_response_der(w.id_for(leaf), kNow, nonce);
  const auto verdict = ocsp::verify_ocsp_response_static(
      body, w.id_for(leaf), w.authority.intermediate_cert().public_key(),
      nonce);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
}

TEST(Nonce, PreGeneratedResponderCannotEcho) {
  // The structural tension: cached responses cannot carry per-request
  // nonces — a strict-nonce client rejects them.
  ExtWorld w;
  ca::ResponderBehavior behavior;
  behavior.pre_generate = true;
  ca::OcspResponder responder(w.authority, behavior, "ocsp.ext.example", w.rng);
  const auto leaf = w.issue("n4.example");
  const Bytes nonce = {0x01, 0x02};
  const Bytes body = responder.build_response_der(w.id_for(leaf), kNow, nonce);
  const auto strict = ocsp::verify_ocsp_response_static(
      body, w.id_for(leaf), w.authority.intermediate_cert().public_key(),
      nonce);
  EXPECT_EQ(strict.outcome, ocsp::CheckOutcome::kNonceMismatch);
  // A lenient client (no expected nonce) accepts the same response.
  const auto lenient = ocsp::verify_ocsp_response_static(
      body, w.id_for(leaf), w.authority.intermediate_cert().public_key());
  EXPECT_EQ(lenient.outcome, ocsp::CheckOutcome::kOk);
}

TEST(Nonce, WrongEchoRejected) {
  ExtWorld w;
  const auto leaf = w.issue("n5.example");
  ocsp::SingleResponse single;
  single.cert_id = w.id_for(leaf);
  single.status = ocsp::CertStatus::kGood;
  single.this_update = kNow - Duration::hours(1);
  const Bytes body = ocsp::OcspResponseBuilder()
                         .produced_at(kNow)
                         .add_single(single)
                         .nonce({7, 7})
                         .sign(w.authority.intermediate_key())
                         .encode_der();
  const Bytes expected = {8, 8};
  const auto verdict = ocsp::verify_ocsp_response_static(
      body, w.id_for(leaf), w.authority.intermediate_cert().public_key(),
      expected);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kNonceMismatch);
}

// ----------------------------------------------------- OCSP over HTTP GET --

TEST(OcspGet, PathRoundTrip) {
  ExtWorld w;
  const auto leaf = w.issue("g.example");
  const auto request = ocsp::OcspRequest::single(w.id_for(leaf));
  const std::string path = request.encode_get_path();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path[0], '/');
  auto parsed = ocsp::OcspRequest::parse_get_path(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().cert_ids()[0], w.id_for(leaf));
}

TEST(OcspGet, AcceptsStandardBase64Too) {
  ExtWorld w;
  const auto leaf = w.issue("g2.example");
  const auto request = ocsp::OcspRequest::single(w.id_for(leaf));
  const std::string standard =
      "/" + util::base64_encode(request.encode_der());
  auto parsed = ocsp::OcspRequest::parse_get_path(standard);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().cert_ids()[0], w.id_for(leaf));
}

TEST(OcspGet, RejectsGarbagePaths) {
  EXPECT_FALSE(ocsp::OcspRequest::parse_get_path("").ok());
  EXPECT_FALSE(ocsp::OcspRequest::parse_get_path("no-slash").ok());
  EXPECT_FALSE(ocsp::OcspRequest::parse_get_path("/!!!").ok());
  EXPECT_FALSE(ocsp::OcspRequest::parse_get_path("/aGVsbG8=").ok());  // not DER
}

// ------------------------------------------------------ issuer-hash check --

TEST(IssuerHashCheck, ForeignIssuerGetsUnknown) {
  ExtWorld w;
  util::Rng other_rng(505);
  ca::CertificateAuthority other("OtherCA", kNow - Duration::days(900),
                                 other_rng);
  ca::OcspResponder responder(w.authority, ca::ResponderBehavior{},
                              "ocsp.ext.example", w.rng);
  // A certificate issued by ANOTHER CA, asked of w.authority's responder.
  ca::LeafRequest request;
  request.domain = "foreign.example";
  request.not_before = kNow - Duration::days(1);
  request.lifetime = Duration::days(90);
  const auto foreign_leaf = other.issue(request, other_rng);
  const auto foreign_id =
      ocsp::CertId::for_certificate(foreign_leaf, other.intermediate_cert());
  const auto response = responder.build_response(foreign_id, kNow);
  ASSERT_FALSE(response.responses().empty());
  EXPECT_EQ(response.responses()[0].status, ocsp::CertStatus::kUnknown);
}

TEST(IssuerHashCheck, IntermediateViaRootHashesAnswered) {
  // The RFC 6961 path: asking the responder about the INTERMEDIATE, with
  // the ROOT as the CertID issuer.
  ExtWorld w;
  ca::OcspResponder responder(w.authority, ca::ResponderBehavior{},
                              "ocsp.ext.example", w.rng);
  const auto id = ocsp::CertId::for_certificate(
      w.authority.intermediate_cert(), w.authority.root_cert());
  const auto response = responder.build_response(id, kNow);
  ASSERT_FALSE(response.responses().empty());
  EXPECT_EQ(response.responses()[0].status, ocsp::CertStatus::kGood);
}

// ------------------------------------------------------------ multi-staple --

struct MultiStapleWorld : public ExtWorld {
  std::unique_ptr<ca::OcspResponder> responder;
  tls::TlsDirectory directory;
  std::unique_ptr<webserver::WebServer> server;

  MultiStapleWorld() {
    responder = std::make_unique<ca::OcspResponder>(
        authority, ca::ResponderBehavior{}, "ocsp.ext.example", rng);
    responder->install(network);
    webserver::WebServerConfig config;
    config.software = webserver::Software::kIdeal;
    server = std::make_unique<webserver::WebServer>(
        "multi.example", authority.chain_for(issue("multi.example", true)),
        config, network);
    server->enable_multi_staple(authority.root_cert());
    server->install(directory);
    server->start(kNow - Duration::hours(1));
    loop.run_until(kNow);
  }

  tls::HandshakeObservation observe(bool v2) {
    tls::ClientHello hello;
    hello.server_name = "multi.example";
    hello.status_request = true;
    hello.status_request_v2 = v2;
    tls::ServerHello server_hello;
    return tls::observe_handshake(directory, hello, roots, kNow, server_hello);
  }
};

TEST(MultiStaple, WholeChainStapled) {
  MultiStapleWorld w;
  const auto obs = w.observe(/*v2=*/true);
  ASSERT_EQ(obs.staple_chain_checks.size(), 2u);
  EXPECT_TRUE(obs.staple_chain_checks[0].usable());
  EXPECT_EQ(obs.staple_chain_checks[0].status, ocsp::CertStatus::kGood);
  EXPECT_TRUE(obs.staple_chain_checks[1].usable());  // the intermediate
  EXPECT_EQ(obs.staple_chain_checks[1].status, ocsp::CertStatus::kGood);
}

TEST(MultiStaple, NotSentWithoutV2) {
  MultiStapleWorld w;
  const auto obs = w.observe(/*v2=*/false);
  EXPECT_TRUE(obs.staple_chain_checks.empty());
  EXPECT_TRUE(obs.staple_present);  // plain v1 staple still works
}

TEST(MultiStaple, RevokedIntermediateCaughtOnlyByV2) {
  MultiStapleWorld w;
  // Revoke the INTERMEDIATE — invisible to plain stapling (§2.3: "OCSP
  // Stapling only allows the revocation status for the leaf").
  w.authority.revoke(w.authority.intermediate_cert().serial(),
                     kNow - Duration::days(1), crl::ReasonCode::kCaCompromise,
                     ca::RevocationPolicy{});
  // Refresh the server's staples.
  w.loop.run_until(kNow + Duration::days(4));

  browser::BrowserProfile v1_browser;
  v1_browser.name = "Plain";
  v1_browser.os = "any";
  browser::BrowserProfile v2_browser = v1_browser;
  v2_browser.name = "MultiStaple";
  v2_browser.requests_multi_staple = true;

  const auto plain = browser::visit(v1_browser, w.directory, "multi.example",
                                    w.roots, kNow + Duration::days(4));
  const auto multi = browser::visit(v2_browser, w.directory, "multi.example",
                                    w.roots, kNow + Duration::days(4));
  // The leaf itself is fine, so the v1 client accepts...
  EXPECT_EQ(plain.verdict, browser::Verdict::kAccept);
  // ...but the v2 client sees the revoked intermediate.
  EXPECT_EQ(multi.verdict, browser::Verdict::kRejectRevoked);
}

TEST(MultiStaple, V2BrowserAcceptsHealthyChain) {
  MultiStapleWorld w;
  browser::BrowserProfile v2_browser;
  v2_browser.name = "MultiStaple";
  v2_browser.os = "any";
  v2_browser.requests_multi_staple = true;
  const auto result =
      browser::visit(v2_browser, w.directory, "multi.example", w.roots, kNow);
  EXPECT_EQ(result.verdict, browser::Verdict::kAccept);
  EXPECT_TRUE(result.staple_valid);
}

// ------------------------------------------------------------ CRL fallback --

TEST(CrlFallback, DiligentBrowserCatchesRevocationViaCrl) {
  ExtWorld w;
  ca::CrlServer crl_server(w.authority, "crl.ext.example");
  crl_server.install(w.network);
  // Server with stapling OFF and no OCSP reachable: only the CRL can help.
  const auto leaf = w.issue("crlfb.example");
  w.authority.revoke(leaf.serial(), kNow - Duration::days(2),
                     crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});
  webserver::WebServerConfig config;
  config.stapling_enabled = false;
  webserver::WebServer server("crlfb.example", w.authority.chain_for(leaf),
                              config, w.network);
  tls::TlsDirectory directory;
  server.install(directory);
  w.loop.run_until(kNow);

  browser::BrowserProfile diligent;
  diligent.name = "CrlChecker";
  diligent.os = "any";
  diligent.checks_crl = true;
  const auto result = browser::visit(diligent, directory, "crlfb.example",
                                     w.roots, kNow, &w.network);
  EXPECT_TRUE(result.downloaded_crl);
  EXPECT_EQ(result.verdict, browser::Verdict::kRejectRevoked);

  // And a good certificate passes via the same path.
  const auto good_leaf = w.issue("crlgood.example");
  webserver::WebServer good_server("crlgood.example",
                                   w.authority.chain_for(good_leaf), config,
                                   w.network);
  good_server.install(directory);
  const auto good = browser::visit(diligent, directory, "crlgood.example",
                                   w.roots, kNow, &w.network);
  EXPECT_TRUE(good.downloaded_crl);
  EXPECT_EQ(good.verdict, browser::Verdict::kAccept);
}

TEST(CrlFallback, LetsEncryptStyleNoCrlMeansSoftFail) {
  // Let's Encrypt supports OCSP only (§5.4 footnote 18): no CRL URL, so
  // even a CRL-checking browser soft-fails when stapling+OCSP are out.
  ExtWorld w;
  ca::LeafRequest request;
  request.domain = "nocrl.example";
  request.not_before = kNow - Duration::days(1);
  request.lifetime = Duration::days(90);
  request.ocsp_urls = {"http://ocsp.unreachable.example/"};
  const auto leaf = w.authority.issue(request, w.rng);
  webserver::WebServerConfig config;
  config.stapling_enabled = false;
  webserver::WebServer server("nocrl.example", w.authority.chain_for(leaf),
                              config, w.network);
  tls::TlsDirectory directory;
  server.install(directory);
  w.loop.run_until(kNow);

  browser::BrowserProfile diligent;
  diligent.name = "CrlChecker";
  diligent.os = "any";
  diligent.checks_crl = true;
  const auto result = browser::visit(diligent, directory, "nocrl.example",
                                     w.roots, kNow, &w.network);
  EXPECT_FALSE(result.downloaded_crl);
  EXPECT_EQ(result.verdict, browser::Verdict::kAcceptSoftFail);
}

}  // namespace
}  // namespace mustaple
