// Unit and property tests for the util module: bytes, Result, Rng,
// SimTime, stats, strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/alloc.hpp"
#include "util/ascii_chart.hpp"
#include "util/bytes.hpp"
#include "util/bytes_view.hpp"
#include "util/hash.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/sharded_cache.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace mustaple::util {
namespace {

// ---------------------------------------------------------------- bytes --

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Bytes, HexOddLengthThrows) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexBadCharThrows) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, TextRoundTrip) {
  EXPECT_EQ(text_of(bytes_of("hello")), "hello");
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = {1, 2};
  append(a, {3, 4});
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(equal_constant_time({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(equal_constant_time({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(equal_constant_time({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(equal_constant_time({}, {}));
}

// --------------------------------------------------------------- result --

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(Result, HoldsError) {
  auto r = Result<int>::failure("some.code", "detail");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "some.code");
  EXPECT_EQ(r.error().to_string(), "some.code: detail");
}

TEST(Result, ValueOnErrorThrows) {
  auto r = Result<int>::failure("x");
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ErrorOnSuccessThrows) {
  Result<int> r(1);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(std::move(r).take(), "abc");
}

TEST(Status, SuccessAndFailure) {
  EXPECT_TRUE(Status::success().ok());
  auto s = Status::failure("code");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "code");
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentOfLabel) {
  Rng parent(99);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  EXPECT_NE(a.next_u64(), b.next_u64());
  // Forking does not advance the parent.
  Rng parent2(99);
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.3);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(14);
  std::vector<double> weights = {1.0, 3.0};
  int second = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    second += rng.weighted_index(weights) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(second) / kTrials, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(15);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, FillCoversBuffer) {
  Rng rng(16);
  std::uint8_t buffer[37] = {};
  rng.fill(buffer, sizeof(buffer));
  int nonzero = 0;
  for (std::uint8_t b : buffer) nonzero += b != 0 ? 1 : 0;
  EXPECT_GT(nonzero, 20);  // overwhelmingly likely
}

// ------------------------------------------------------------- sim_time --

TEST(SimTime, EpochIsZero) {
  EXPECT_EQ(make_time(1970, 1, 1).unix_seconds, 0);
}

TEST(SimTime, KnownTimestamp) {
  // 2018-04-25 00:00:00 UTC == 1524614400.
  EXPECT_EQ(make_time(2018, 4, 25).unix_seconds, 1524614400);
}

TEST(SimTime, LeapYearHandling) {
  EXPECT_EQ(make_time(2016, 3, 1) - make_time(2016, 2, 28),
            Duration::days(2));
  EXPECT_EQ(make_time(2018, 3, 1) - make_time(2018, 2, 28),
            Duration::days(1));
  EXPECT_EQ(make_time(2000, 3, 1) - make_time(2000, 2, 28),
            Duration::days(2));  // 2000 IS a leap year (div by 400)
  EXPECT_EQ(make_time(1900, 3, 1) - make_time(1900, 2, 28),
            Duration::days(1));  // 1900 is NOT
}

TEST(SimTime, RejectsInvalidCivil) {
  EXPECT_THROW(make_time(2018, 13, 1), std::invalid_argument);
  EXPECT_THROW(make_time(2018, 2, 29), std::invalid_argument);
  EXPECT_THROW(make_time(2018, 1, 1, 24), std::invalid_argument);
  EXPECT_THROW(make_time(2018, 0, 1), std::invalid_argument);
}

TEST(SimTime, FormatTime) {
  EXPECT_EQ(format_time(make_time(2018, 9, 4, 13, 5, 9)),
            "2018-09-04 13:05:09");
}

TEST(SimTime, GeneralizedTimeRoundTrip) {
  const SimTime t = make_time(2018, 4, 25, 19, 30, 45);
  EXPECT_EQ(to_generalized_time(t), "20180425193045Z");
  EXPECT_EQ(from_generalized_time("20180425193045Z"), t);
}

TEST(SimTime, GeneralizedTimeRejectsMalformed) {
  EXPECT_THROW(from_generalized_time("2018"), std::invalid_argument);
  EXPECT_THROW(from_generalized_time("20180425193045"), std::invalid_argument);
  EXPECT_THROW(from_generalized_time("2018042519304xZ"), std::invalid_argument);
  EXPECT_THROW(from_generalized_time("20181325193045Z"), std::invalid_argument);
}

TEST(SimTime, DurationArithmetic) {
  const SimTime t = make_time(2018, 1, 1);
  EXPECT_EQ((t + Duration::days(1)) - t, Duration::hours(24));
  EXPECT_EQ(Duration::minutes(90), Duration::hours(1) + Duration::minutes(30));
  EXPECT_EQ(Duration::hours(2) * 3, Duration::hours(6));
  EXPECT_LT(t, t + Duration::secs(1));
}

// Property: civil -> SimTime -> civil round-trips across many dates.
class TimeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TimeRoundTrip, CivilRoundTrip) {
  // Use the parameter as a day offset from 1995-01-01.
  const SimTime base = make_time(1995, 1, 1);
  const SimTime t = base + Duration::days(GetParam()) +
                    Duration::secs(GetParam() * 7919 % 86400);
  const CivilTime civil = to_civil(t);
  EXPECT_EQ(from_civil(civil), t);
  EXPECT_EQ(from_generalized_time(to_generalized_time(t)), t);
}

INSTANTIATE_TEST_SUITE_P(ManyDates, TimeRoundTrip,
                         ::testing::Range(0, 12000, 97));

// ---------------------------------------------------------------- stats --

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Cdf, FractionAtMost) {
  Cdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(10.0), 1.0);
}

TEST(Cdf, Quantiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.median(), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Cdf, InfiniteMass) {
  Cdf cdf;
  cdf.add(1.0);
  cdf.add_infinite();
  cdf.add_infinite();
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.infinite_fraction(), 0.5);
  EXPECT_EQ(cdf.sorted_finite().size(), 2u);
  EXPECT_TRUE(std::isinf(cdf.quantile(0.9)));
}

TEST(Cdf, QuantileErrors) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  cdf.add(1.0);
  EXPECT_THROW(cdf.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(BinnedRatio, Percentages) {
  BinnedRatio bins(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) bins.add(i + 0.5, i % 2 == 0);
  for (std::size_t b = 0; b < bins.bins(); ++b) {
    EXPECT_DOUBLE_EQ(bins.percentage(b), 50.0);
    EXPECT_EQ(bins.total(b), 10u);
  }
  EXPECT_DOUBLE_EQ(bins.bin_center(0), 5.0);
}

TEST(BinnedRatio, RightEdgeBelongsToLastBin) {
  BinnedRatio bins(0.0, 10.0, 2);
  bins.add(10.0, true);
  EXPECT_EQ(bins.total(1), 1u);
}

TEST(BinnedRatio, OutOfRangeIgnored) {
  BinnedRatio bins(0.0, 10.0, 2);
  bins.add(-1.0, true);
  bins.add(11.0, true);
  EXPECT_EQ(bins.total(0) + bins.total(1), 0u);
}

TEST(BinnedRatio, RejectsBadConstruction) {
  EXPECT_THROW(BinnedRatio(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(BinnedRatio(0.0, 1.0, 0), std::invalid_argument);
}

// -------------------------------------------------------------- strings --

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y\t\r\n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("x", "http://"));
  EXPECT_TRUE(ends_with("a.crl", ".crl"));
  EXPECT_FALSE(ends_with("crl", ".crl"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Strings, PercentDecodePassesPlainTextThrough) {
  auto plain = percent_decode("MEUwQzBBMD8wPTAJ");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value(), "MEUwQzBBMD8wPTAJ");
}

TEST(Strings, PercentDecodeDecodesEscapes) {
  // The three escapes an RFC 6960 A.1 GET client must produce, plus mixed
  // case hex and a '+' which is NOT form-decoded to a space in a path.
  auto decoded = percent_decode("a%2Bb%2fc%3Dd+e");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), "a+b/c=d+e");
}

TEST(Strings, PercentDecodeAllowsAnyByteIncludingNul) {
  auto nul = percent_decode("x%00y");
  ASSERT_TRUE(nul.ok());
  ASSERT_EQ(nul.value().size(), 3u);
  EXPECT_EQ(nul.value()[1], '\0');
}

TEST(Strings, PercentDecodeRejectsBadEscapes) {
  EXPECT_FALSE(percent_decode("%GZ").ok());          // non-hex digits
  EXPECT_FALSE(percent_decode("ok%G0").ok());        // first digit bad
  EXPECT_FALSE(percent_decode("ok%0G").ok());        // second digit bad
  EXPECT_FALSE(percent_decode("truncated%A").ok());  // one digit then EOF
  EXPECT_FALSE(percent_decode("dangling%").ok());    // bare '%' at EOF
  const auto error = percent_decode("%GZ").error();
  EXPECT_EQ(error.code, "strings.bad_percent_escape");
}

// ------------------------------------------------------------ ascii_chart --

TEST(AsciiChart, RendersSeriesAndLegend) {
  Series s;
  s.label = "test-series";
  for (int i = 0; i < 10; ++i) s.add(i, i * i);
  ChartOptions options;
  options.title = "chart-title";
  const std::string out = render_chart({s}, options);
  EXPECT_NE(out.find("chart-title"), std::string::npos);
  EXPECT_NE(out.find("test-series"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptyDataHandled) {
  const std::string out = render_chart({}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiChart, CdfRenderReportsInfiniteMass) {
  Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  cdf.add_infinite();
  const std::string out = render_cdf(cdf, {});
  EXPECT_NE(out.find("infinity"), std::string::npos);
}

TEST(AsciiChart, TableAlignsCells) {
  const std::string out =
      render_table({"name", "value"}, {{"a", "1"}, {"longer-name", "22"}});
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
}

// ------------------------------------------------------------------ hash --

TEST(Hash, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors; pins the constants.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, Fnv1a64BytesAndStringAgree) {
  const Bytes bytes = bytes_of("ocsp.example.com");
  EXPECT_EQ(fnv1a64(bytes), fnv1a64("ocsp.example.com"));
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(1, 2), 3),
            hash_combine(hash_combine(3, 2), 1));
  EXPECT_NE(hash_combine(0, 0), 0u);
  EXPECT_NE(mix64(1), mix64(2));
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for_index(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadDegradesToPlainLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for_index(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for_index(100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 5'000u);
}

TEST(ThreadPool, FirstExceptionRethrownAfterBarrier) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for_index(1'000,
                              [&](std::size_t i) {
                                ran.fetch_add(1, std::memory_order_relaxed);
                                if (i == 137) throw std::runtime_error("boom");
                              }),
      std::runtime_error);
  // The pool survives the throw and keeps working.
  std::atomic<std::size_t> after{0};
  pool.parallel_for_index(10, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10u);
  EXPECT_GT(ran.load(), 0u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, EnvThreadsParsesVariable) {
  const char* saved = std::getenv("MUSTAPLE_SCAN_THREADS");
  const std::string restore = saved ? saved : "";
  ::unsetenv("MUSTAPLE_SCAN_THREADS");
  EXPECT_EQ(ThreadPool::env_threads(3), 3u);
  ::setenv("MUSTAPLE_SCAN_THREADS", "4", 1);
  EXPECT_EQ(ThreadPool::env_threads(3), 4u);
  ::setenv("MUSTAPLE_SCAN_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::env_threads(3), 3u);  // non-positive -> fallback
  ::setenv("MUSTAPLE_SCAN_THREADS", "junk", 1);
  EXPECT_EQ(ThreadPool::env_threads(3), 3u);
  if (saved) {
    ::setenv("MUSTAPLE_SCAN_THREADS", restore.c_str(), 1);
  } else {
    ::unsetenv("MUSTAPLE_SCAN_THREADS");
  }
}

// ----------------------------------------------------------- BytesView --

TEST(BytesView, ViewsIntoBytesWithoutCopying) {
  const Bytes data = {1, 2, 3, 4, 5};
  const BytesView view = data;  // implicit, by design
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(view.data(), data.data());  // zero-copy: same storage
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view.front(), 1);
  EXPECT_EQ(view.back(), 5);
  EXPECT_FALSE(view.empty());
  EXPECT_TRUE(BytesView().empty());
}

TEST(BytesView, SubviewAndDropFrontClamp) {
  const Bytes data = {10, 20, 30, 40};
  const BytesView view = data;
  EXPECT_EQ(view.subview(1, 2), BytesView(data.data() + 1, 2));
  EXPECT_EQ(view.subview(1, 2).to_bytes(), (Bytes{20, 30}));
  EXPECT_EQ(view.drop_front(3).to_bytes(), (Bytes{40}));
  // Out-of-range positions/counts clamp instead of overflowing.
  EXPECT_TRUE(view.subview(99).empty());
  EXPECT_EQ(view.subview(2, 99).size(), 2u);
  EXPECT_TRUE(view.drop_front(99).empty());
}

TEST(BytesView, EqualityComparesContents) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_EQ(BytesView(a), BytesView(b));  // different storage, same bytes
  EXPECT_FALSE(BytesView(a) == BytesView(c));
  EXPECT_FALSE(BytesView(a) == BytesView(a).subview(0, 2));
}

TEST(BytesView, ToBytesMaterializesIndependentCopy) {
  Bytes data = {7, 8, 9};
  const Bytes copy = BytesView(data).to_bytes();
  data[0] = 0;  // mutating the source must not affect the copy
  EXPECT_EQ(copy, (Bytes{7, 8, 9}));
}

TEST(BytesView, TextOfAndAppend) {
  const Bytes data = bytes_of("hello");
  EXPECT_EQ(text_of(BytesView(data)), "hello");
  Bytes out = bytes_of("x");
  append(out, BytesView(data).subview(0, 2));
  EXPECT_EQ(text_of(out), "xhe");
}

// -------------------------------------------------------- ShardedCache --

TEST(ShardedCache, RoundsShardCountUpToPowerOfTwo) {
  EXPECT_EQ(ShardedCache<int>(1, 100).shard_count(), 1u);
  EXPECT_EQ(ShardedCache<int>(3, 100).shard_count(), 4u);
  EXPECT_EQ(ShardedCache<int>(16, 100).shard_count(), 16u);
  EXPECT_EQ(ShardedCache<int>(17, 100).shard_count(), 32u);
}

TEST(ShardedCache, LookupInsertRoundTrip) {
  ShardedCache<int> cache(4, 100);
  EXPECT_FALSE(cache.lookup(42).has_value());
  cache.insert(42, 7);
  const auto hit = cache.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7);
  cache.insert(42, 8);  // overwrite
  EXPECT_EQ(*cache.lookup(42), 8);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, ConservationHoldsPerShardAndInAggregate) {
  ShardedCache<int> cache(8, 1000);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = mix64(rng.uniform(256));
    if (!cache.lookup(key)) cache.insert(key, i);
  }
  ShardedCacheStats sum;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const ShardedCacheStats stats = cache.shard_stats(s);
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups) << "shard " << s;
    sum.lookups += stats.lookups;
    sum.hits += stats.hits;
    sum.misses += stats.misses;
    sum.insertions += stats.insertions;
    sum.size += stats.size;
  }
  const ShardedCacheStats totals = cache.totals();
  EXPECT_EQ(totals.lookups, 5000u);
  EXPECT_EQ(totals.hits + totals.misses, totals.lookups);
  EXPECT_EQ(sum.lookups, totals.lookups);
  EXPECT_EQ(sum.hits, totals.hits);
  EXPECT_EQ(sum.misses, totals.misses);
  EXPECT_EQ(sum.insertions, totals.insertions);
  EXPECT_EQ(sum.size, totals.size);
  EXPECT_EQ(totals.insertions, totals.misses);  // insert-on-miss discipline
}

TEST(ShardedCache, ClearOnLimitBoundsEachShard) {
  // capacity 8 over 4 shards -> 2 entries per shard before a clear.
  ShardedCache<int> cache(4, 8);
  for (std::uint64_t k = 0; k < 64; ++k) cache.insert(mix64(k), 1);
  const ShardedCacheStats totals = cache.totals();
  EXPECT_EQ(totals.insertions, 64u);
  EXPECT_GT(totals.clears, 0u);
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    EXPECT_LE(cache.shard_stats(s).size, 2u) << "shard " << s;
  }
}

TEST(ShardedCache, NoteCollisionCountsWithoutMutatingEntries) {
  ShardedCache<int> cache(2, 10);
  cache.insert(5, 50);
  cache.note_collision(5);
  cache.note_collision(5);
  EXPECT_EQ(cache.totals().collisions, 2u);
  EXPECT_EQ(*cache.lookup(5), 50);
}

TEST(ShardedCache, ParallelMixedWorkloadKeepsConservation) {
  ShardedCache<std::uint64_t> cache(8, 4096);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 20'000;
  ThreadPool pool(kThreads);
  std::atomic<std::uint64_t> found{0};
  pool.parallel_for_index(kThreads, [&](std::size_t t) {
    Rng rng(1000 + t);
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t key = mix64(rng.uniform(512));
      if (const auto hit = cache.lookup(key)) {
        local += (*hit != 0);
      } else {
        cache.insert(key, key);
      }
    }
    found.fetch_add(local);
  });
  const ShardedCacheStats totals = cache.totals();
  EXPECT_EQ(totals.lookups, kThreads * kOpsPerThread);
  EXPECT_EQ(totals.hits + totals.misses, totals.lookups);
  // Every miss triggered exactly one insert (racy double-misses insert the
  // same value twice — still conserved).
  EXPECT_EQ(totals.insertions, totals.misses);
}

// ---------------------------------------------------------------- alloc --

TEST(AllocCounter, ConservationHoldsAtQuiescentPoints) {
  AllocCounter counter;
  counter.record_alloc(100);
  counter.record_alloc(50);
  counter.record_free(30);
  EXPECT_EQ(counter.allocated_bytes(), 150u);
  EXPECT_EQ(counter.freed_bytes(), 30u);
  EXPECT_EQ(counter.outstanding_bytes(),
            counter.allocated_bytes() - counter.freed_bytes());
  EXPECT_EQ(counter.alloc_calls(), 2u);
  EXPECT_EQ(counter.free_calls(), 1u);
  counter.record_free(120);
  EXPECT_EQ(counter.outstanding_bytes(), 0u);
  EXPECT_EQ(counter.peak_outstanding_bytes(), 150u);
}

TEST(AllocCounter, ConservationSurvivesMultithreadedChurn) {
  AllocCounter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 5000;
  ThreadPool pool(kThreads);
  pool.parallel_for_index(kThreads, [&](std::size_t t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      const std::size_t bytes = 16 + (t * kOpsPerThread + i) % 64;
      counter.record_alloc(bytes);
      counter.record_free(bytes);
    }
  });
  // Every alloc was matched by an equal free, so at this barrier the books
  // must balance exactly — no lost updates, no double counting.
  EXPECT_EQ(counter.allocated_bytes(), counter.freed_bytes());
  EXPECT_EQ(counter.outstanding_bytes(), 0u);
  EXPECT_EQ(counter.alloc_calls(), kThreads * kOpsPerThread);
  EXPECT_EQ(counter.free_calls(), kThreads * kOpsPerThread);
  // The high-water mark saw at least one live allocation and never exceeds
  // the total ever allocated.
  EXPECT_GE(counter.peak_outstanding_bytes(), 16u);
  EXPECT_LE(counter.peak_outstanding_bytes(), counter.allocated_bytes());
}

TEST(AllocCounter, PeakTracksHighWaterNotCurrent) {
  AllocCounter counter;
  counter.record_alloc(1000);
  counter.record_free(900);
  counter.record_alloc(50);
  EXPECT_EQ(counter.outstanding_bytes(), 150u);
  EXPECT_EQ(counter.peak_outstanding_bytes(), 1000u);
  counter.reset();
  EXPECT_EQ(counter.peak_outstanding_bytes(), 0u);
  EXPECT_EQ(counter.allocated_bytes(), 0u);
}

TEST(CountingAllocator, ChargesANamedCounterThroughARealContainer) {
  AllocCounter counter;
  {
    const CountingAllocator<std::uint64_t> allocator(&counter);
    std::vector<std::uint64_t, CountingAllocator<std::uint64_t>> values(
        allocator);
    values.reserve(1024);
    EXPECT_GE(counter.allocated_bytes(), 1024 * sizeof(std::uint64_t));
    EXPECT_GT(counter.outstanding_bytes(), 0u);
    for (std::uint64_t i = 0; i < 1024; ++i) values.push_back(i);
    EXPECT_EQ(values.size(), 1024u);
  }
  // Container destruction returns every byte: conservation at quiescence.
  EXPECT_EQ(counter.allocated_bytes(), counter.freed_bytes());
  EXPECT_EQ(counter.outstanding_bytes(), 0u);
  EXPECT_EQ(counter.alloc_calls(), counter.free_calls());
}

TEST(CountingAllocator, NullCounterDegradesToPlainAllocation) {
  std::vector<int, CountingAllocator<int>> values;  // default: no counter
  for (int i = 0; i < 100; ++i) values.push_back(i);
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(values[99], 99);
  // All instances compare equal regardless of counter wiring (the
  // std::allocator contract containers rely on for swap/move).
  AllocCounter counter;
  EXPECT_TRUE(CountingAllocator<int>(&counter) == CountingAllocator<int>());
  EXPECT_FALSE(CountingAllocator<int>(&counter) != CountingAllocator<int>());
}

TEST(AllocTally, ReleasesEverythingOnDestruction) {
  AllocCounter counter;
  {
    AllocTally tally(counter);
    tally.record(4096);
    tally.record(512);
    EXPECT_EQ(tally.total(), 4608u);
    EXPECT_EQ(counter.outstanding_bytes(), 4608u);
    tally.release(512);
    EXPECT_EQ(tally.total(), 4096u);
  }
  // Destructor released the remaining 4096: books balance.
  EXPECT_EQ(counter.outstanding_bytes(), 0u);
  EXPECT_EQ(counter.allocated_bytes(), counter.freed_bytes());
  EXPECT_EQ(counter.peak_outstanding_bytes(), 4608u);
}

TEST(AllocRegistry, NamedCountersAreStableReferences) {
  AllocCounter& a = alloc_counter("test.util_alloc_registry");
  AllocCounter& b = alloc_counter("test.util_alloc_registry");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.record_alloc(7);
  EXPECT_EQ(b.outstanding_bytes(), 7u);
  a.record_free(7);
}

TEST(AllocRegistry, VisitWalksCountersInNameOrder) {
  alloc_counter("test.visit_b");
  alloc_counter("test.visit_a");
  std::vector<std::string> names;
  visit_alloc_counters(
      [&](const std::string& name, const AllocCounter&) {
        names.push_back(name);
      });
  ASSERT_GE(names.size(), 2u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Both registered names appear.
  EXPECT_NE(std::find(names.begin(), names.end(), "test.visit_a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.visit_b"),
            names.end());
}

}  // namespace
}  // namespace mustaple::util
