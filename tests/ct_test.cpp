// Certificate Transparency substrate tests: RFC 6962 Merkle tree hashes,
// exhaustive inclusion/consistency proof verification over small trees,
// SCT/STH signatures, and the Censys-style snapshot pipeline (§4 corpus).
#include <gtest/gtest.h>

#include "ca/authority.hpp"
#include "crypto/sha256.hpp"
#include "ct/log.hpp"
#include "ct/merkle.hpp"
#include "measurement/censys.hpp"

namespace mustaple {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 4, 24);

Bytes entry(int i) {
  return util::bytes_of("entry-" + std::to_string(i));
}

// ---------------------------------------------------------------- hashes --

TEST(Merkle, EmptyTreeRootIsHashOfEmptyString) {
  ct::MerkleTree tree;
  EXPECT_EQ(util::to_hex(tree.root_hash()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  ct::MerkleTree tree;
  tree.append(entry(0));
  EXPECT_EQ(tree.root_hash(), ct::leaf_hash(entry(0)));
}

TEST(Merkle, TwoLeafRootIsNodeOfLeafHashes) {
  ct::MerkleTree tree;
  tree.append(entry(0));
  tree.append(entry(1));
  EXPECT_EQ(tree.root_hash(),
            ct::node_hash(ct::leaf_hash(entry(0)), ct::leaf_hash(entry(1))));
}

TEST(Merkle, DomainSeparationBetweenLeafAndNode) {
  // 0x00 vs 0x01 prefixes: a leaf over X never collides with a node whose
  // serialization happens to equal X.
  const Bytes data = {1, 2, 3};
  EXPECT_NE(ct::leaf_hash(data), crypto::Sha256::hash(data));
}

TEST(Merkle, UnbalancedTreeSplitsAtLargestPowerOfTwo) {
  // n=3: MTH = H(MTH(D[0:2]), MTH(D[2:3])).
  ct::MerkleTree tree;
  for (int i = 0; i < 3; ++i) tree.append(entry(i));
  const Bytes left =
      ct::node_hash(ct::leaf_hash(entry(0)), ct::leaf_hash(entry(1)));
  EXPECT_EQ(tree.root_hash(), ct::node_hash(left, ct::leaf_hash(entry(2))));
}

TEST(Merkle, PrefixRootsMatchIncrementalConstruction) {
  ct::MerkleTree incremental;
  for (int n = 1; n <= 20; ++n) {
    incremental.append(entry(n - 1));
    ct::MerkleTree fresh;
    for (int i = 0; i < n; ++i) fresh.append(entry(i));
    EXPECT_EQ(incremental.root_hash(), fresh.root_hash()) << n;
    EXPECT_EQ(incremental.root_hash(static_cast<std::uint64_t>(n)),
              incremental.root_hash())
        << n;
  }
}

// --------------------------------------------------------------- proofs --

class MerkleExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(MerkleExhaustive, InclusionForEveryLeafAndPrefix) {
  const int n = GetParam();
  ct::MerkleTree tree;
  for (int i = 0; i < n; ++i) tree.append(entry(i));
  for (std::uint64_t tree_size = 1; tree_size <= static_cast<std::uint64_t>(n);
       ++tree_size) {
    const Bytes root = tree.root_hash(tree_size);
    for (std::uint64_t leaf = 0; leaf < tree_size; ++leaf) {
      const auto proof = tree.inclusion_proof(leaf, tree_size);
      EXPECT_TRUE(ct::MerkleTree::verify_inclusion(entry(static_cast<int>(leaf)),
                                                   leaf, tree_size, proof,
                                                   root))
          << "leaf " << leaf << " of " << tree_size;
      // A proof for leaf i must NOT verify another entry.
      EXPECT_FALSE(ct::MerkleTree::verify_inclusion(
          util::bytes_of("imposter"), leaf, tree_size, proof, root));
      // Nor against the wrong position (when there is more than one).
      if (tree_size > 1) {
        EXPECT_FALSE(ct::MerkleTree::verify_inclusion(
            entry(static_cast<int>(leaf)), (leaf + 1) % tree_size, tree_size,
            proof, root));
      }
    }
  }
}

TEST_P(MerkleExhaustive, ConsistencyForEverySizePair) {
  const int n = GetParam();
  ct::MerkleTree tree;
  for (int i = 0; i < n; ++i) tree.append(entry(i));
  for (std::uint64_t old_size = 1; old_size <= static_cast<std::uint64_t>(n);
       ++old_size) {
    const Bytes old_root = tree.root_hash(old_size);
    for (std::uint64_t new_size = old_size;
         new_size <= static_cast<std::uint64_t>(n); ++new_size) {
      const Bytes new_root = tree.root_hash(new_size);
      const auto proof = tree.consistency_proof(old_size, new_size);
      EXPECT_TRUE(ct::MerkleTree::verify_consistency(old_size, new_size,
                                                     old_root, new_root,
                                                     proof))
          << old_size << " -> " << new_size;
      // A forged old root must not verify.
      Bytes forged = old_root;
      forged[0] ^= 0xff;
      EXPECT_FALSE(ct::MerkleTree::verify_consistency(old_size, new_size,
                                                      forged, new_root,
                                                      proof))
          << old_size << " -> " << new_size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 33));

TEST(Merkle, ProofArgumentValidation) {
  ct::MerkleTree tree;
  tree.append(entry(0));
  EXPECT_THROW(tree.inclusion_proof(1, 1), std::out_of_range);
  EXPECT_THROW(tree.inclusion_proof(0, 2), std::out_of_range);
  EXPECT_THROW(tree.consistency_proof(0, 1), std::out_of_range);
  EXPECT_THROW(tree.consistency_proof(2, 1), std::out_of_range);
  EXPECT_THROW(tree.entry(5), std::out_of_range);
}

TEST(Merkle, TamperedProofRejected) {
  ct::MerkleTree tree;
  for (int i = 0; i < 10; ++i) tree.append(entry(i));
  const Bytes root = tree.root_hash();
  auto proof = tree.inclusion_proof(4, 10);
  ASSERT_FALSE(proof.empty());
  proof[0][0] ^= 0x01;
  EXPECT_FALSE(ct::MerkleTree::verify_inclusion(entry(4), 4, 10, proof, root));
  // Truncated proofs must fail too, not crash.
  auto shortened = tree.inclusion_proof(4, 10);
  shortened.pop_back();
  EXPECT_FALSE(
      ct::MerkleTree::verify_inclusion(entry(4), 4, 10, shortened, root));
  // And over-long proofs.
  auto extended = tree.inclusion_proof(4, 10);
  extended.push_back(Bytes(32, 0));
  EXPECT_FALSE(
      ct::MerkleTree::verify_inclusion(entry(4), 4, 10, extended, root));
}

// ------------------------------------------------------------------ log --

struct LogWorld {
  util::Rng rng{2018};
  ca::CertificateAuthority authority{"LogCA", kNow - Duration::days(900), rng};
  ct::CtLog log{"sim-log-2018", rng};

  x509::Certificate issue(const std::string& domain) {
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = kNow - Duration::days(1);
    request.lifetime = Duration::days(90);
    request.ocsp_urls = {"http://ocsp.log.example/"};
    return authority.issue(request, rng);
  }
};

TEST(CtLog, SctVerifies) {
  LogWorld w;
  const auto cert = w.issue("logged.example");
  const auto sct = w.log.submit(cert, kNow);
  EXPECT_TRUE(ct::CtLog::verify_sct(cert, sct, w.log.public_key()));
  // Wrong certificate or wrong key fails.
  const auto other = w.issue("other.example");
  EXPECT_FALSE(ct::CtLog::verify_sct(other, sct, w.log.public_key()));
  util::Rng rng2(1);
  ct::CtLog other_log("other-log", rng2);
  EXPECT_FALSE(ct::CtLog::verify_sct(cert, sct, other_log.public_key()));
}

TEST(CtLog, TreeHeadVerifiesAndGrows) {
  LogWorld w;
  w.log.submit(w.issue("a.example"), kNow);
  const auto sth1 = w.log.tree_head(kNow);
  EXPECT_TRUE(ct::CtLog::verify_tree_head(sth1, w.log.public_key()));
  EXPECT_EQ(sth1.tree_size, 1u);
  w.log.submit(w.issue("b.example"), kNow + Duration::hours(1));
  const auto sth2 = w.log.tree_head(kNow + Duration::hours(1));
  EXPECT_EQ(sth2.tree_size, 2u);
  // Consistency between the two heads.
  const auto proof = w.log.consistency_proof(1, 2);
  EXPECT_TRUE(ct::MerkleTree::verify_consistency(
      1, 2, sth1.root_hash, sth2.root_hash, proof));
}

TEST(CtLog, EntryInclusionVerifies) {
  LogWorld w;
  std::vector<x509::Certificate> certs;
  for (int i = 0; i < 9; ++i) {
    certs.push_back(w.issue("d" + std::to_string(i) + ".example"));
    w.log.submit(certs.back(), kNow);
  }
  const auto sth = w.log.tree_head(kNow);
  for (std::uint64_t i = 0; i < certs.size(); ++i) {
    EXPECT_TRUE(w.log.verify_entry_inclusion(certs[i], i, sth)) << i;
  }
  EXPECT_FALSE(w.log.verify_entry_inclusion(certs[0], 3, sth));
}

// ----------------------------------------------------------------- censys --

TEST(Censys, DedupAcrossSourcesAndValidityTriage) {
  LogWorld w;
  // Three stores with partial overlap: apple+nss trust LogCA; microsoft
  // does not (it trusts a different CA).
  util::Rng rng2(77);
  ca::CertificateAuthority other_ca("OtherCA", kNow - Duration::days(900),
                                    rng2);
  measurement::RootStoreTriple stores;
  stores.apple.add(w.authority.root_cert());
  stores.nss.add(w.authority.root_cert());
  stores.microsoft.add(other_ca.root_cert());

  const auto seen_everywhere = w.issue("both.example");
  const auto scan_only = w.issue("scan.example");
  const auto ct_only = w.issue("ct.example");
  // An expired certificate, CT-visible only.
  ca::LeafRequest old_request;
  old_request.domain = "old.example";
  old_request.not_before = kNow - Duration::days(400);
  old_request.lifetime = Duration::days(90);
  const auto expired = w.authority.issue(old_request, w.rng);
  // An untrusted self-signed rogue found by the scan.
  util::Rng rogue_rng(5);
  const auto rogue_key = crypto::KeyPair::generate_sim(rogue_rng);
  const auto rogue = x509::CertificateBuilder()
                         .serial_number(666)
                         .subject(x509::DistinguishedName{"rogue.example", "", ""})
                         .issuer(x509::DistinguishedName{"rogue.example", "", ""})
                         .validity(kNow - Duration::days(1),
                                   kNow + Duration::days(1))
                         .public_key(rogue_key.public_key())
                         .sign(rogue_key);

  w.log.submit(seen_everywhere, kNow);
  w.log.submit(ct_only, kNow);
  w.log.submit(expired, kNow);
  w.log.submit(seen_everywhere, kNow);  // duplicate submission

  measurement::CensysPipeline pipeline(std::move(stores));
  pipeline.ingest_scan(w.authority.chain_for(seen_everywhere));
  pipeline.ingest_scan(w.authority.chain_for(scan_only));
  pipeline.ingest_scan(w.authority.chain_for(seen_everywhere));  // re-seen
  pipeline.ingest_scan({rogue});
  pipeline.ingest_log(w.log, kNow, {w.authority.intermediate_cert()});

  const auto snap = pipeline.snapshot(kNow);
  EXPECT_EQ(snap.observations, 8u);  // 4 scans + 4 CT entries
  EXPECT_EQ(snap.unique_certificates, 5u);
  EXPECT_EQ(snap.from_both, 1u);        // seen_everywhere
  EXPECT_EQ(snap.from_scan_only, 2u);   // scan_only + rogue
  EXPECT_EQ(snap.from_ct_only, 2u);     // ct_only + expired
  EXPECT_EQ(snap.dropped_ct_entries, 0u);
  // Validity per footnote 7: trusted by apple/nss even though microsoft
  // does not carry the root.
  EXPECT_EQ(snap.valid, 3u);
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.untrusted, 1u);
  EXPECT_EQ(snap.valid_with_ocsp, 3u);
}

TEST(Censys, MustStapleCounted) {
  LogWorld w;
  measurement::RootStoreTriple stores;
  stores.apple.add(w.authority.root_cert());
  ca::LeafRequest request;
  request.domain = "ms.example";
  request.not_before = kNow - Duration::days(1);
  request.lifetime = Duration::days(90);
  request.must_staple = true;
  request.ocsp_urls = {"http://ocsp.log.example/"};
  const auto ms_cert = w.authority.issue(request, w.rng);
  measurement::CensysPipeline pipeline(std::move(stores));
  pipeline.ingest_scan(w.authority.chain_for(ms_cert));
  const auto snap = pipeline.snapshot(kNow);
  EXPECT_EQ(snap.valid, 1u);
  EXPECT_EQ(snap.valid_with_must_staple, 1u);
}

}  // namespace
}  // namespace mustaple
