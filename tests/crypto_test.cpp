// Crypto substrate tests: SHA-256/SHA-1 against FIPS vectors, HMAC against
// RFC 4231, BigInt algebraic properties, RSA sign/verify, and the unified
// signer interface.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/bigint.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"
#include "util/rng.hpp"

namespace mustaple::crypto {
namespace {

using util::Bytes;

// --------------------------------------------------------------- SHA-256 --

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(util::to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(util::to_hex(Sha256::hash(util::bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(util::to_hex(Sha256::hash(util::bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(util::to_hex(hasher.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = util::bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 hasher;
    hasher.update(data.data(), split);
    hasher.update(data.data() + split, data.size() - split);
    EXPECT_EQ(hasher.digest(), Sha256::hash(data));
  }
}

// ---------------------------------------------- SHA-256 dispatch paths --

// A guard that restores the dispatcher's own choice no matter how the test
// exits, so a failing dispatch test can't poison later tests.
class ImplGuard {
 public:
  ImplGuard() : saved_(sha256_active_impl()) {}
  ~ImplGuard() { sha256_set_impl(saved_); }

 private:
  Sha256Impl saved_;
};

TEST(Sha256Dispatch, ScalarAndUnrolledAlwaysAvailable) {
  const auto impls = sha256_available_impls();
  EXPECT_NE(std::find(impls.begin(), impls.end(), Sha256Impl::kScalar),
            impls.end());
  EXPECT_NE(std::find(impls.begin(), impls.end(), Sha256Impl::kUnrolled),
            impls.end());
  // The dispatcher's active choice is always one of the available set.
  EXPECT_NE(std::find(impls.begin(), impls.end(), sha256_active_impl()),
            impls.end());
}

TEST(Sha256Dispatch, SetImplHonorsAvailability) {
  ImplGuard guard;
  const auto impls = sha256_available_impls();
  for (Sha256Impl impl : {Sha256Impl::kScalar, Sha256Impl::kUnrolled,
                          Sha256Impl::kAvx2, Sha256Impl::kShaNi}) {
    const bool available =
        std::find(impls.begin(), impls.end(), impl) != impls.end();
    const Sha256Impl before = sha256_active_impl();
    EXPECT_EQ(sha256_set_impl(impl), available) << to_string(impl);
    // On success the switch takes effect; on refusal nothing changes.
    EXPECT_EQ(sha256_active_impl(), available ? impl : before);
  }
}

TEST(Sha256Dispatch, AllImplsMatchNistVectors) {
  ImplGuard guard;
  const struct {
    const char* msg;
    const char* hex;
  } kVectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (Sha256Impl impl : sha256_available_impls()) {
    ASSERT_TRUE(sha256_set_impl(impl)) << to_string(impl);
    for (const auto& v : kVectors) {
      EXPECT_EQ(util::to_hex(Sha256::hash(util::bytes_of(v.msg))), v.hex)
          << to_string(impl) << " msg=" << v.msg;
    }
    // Multi-block incremental input (exercises the no-copy fast path).
    Sha256 hasher;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) hasher.update(chunk);
    EXPECT_EQ(util::to_hex(hasher.digest()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        << to_string(impl);
  }
}

TEST(Sha256Dispatch, RandomizedLengthsAgreeAcrossImpls) {
  // Every length from 0 through three blocks + 17 bytes: covers empty
  // input, sub-block tails, exact block boundaries, and the staging-buffer
  // drain + whole-blocks + tail split inside update().
  ImplGuard guard;
  const auto impls = sha256_available_impls();
  util::Rng rng(0x5eed5eed);
  for (std::size_t len = 0; len <= 3 * 64 + 17; ++len) {
    Bytes data(len);
    if (len > 0) rng.fill(data.data(), data.size());
    std::vector<Bytes> digests;
    for (Sha256Impl impl : impls) {
      ASSERT_TRUE(sha256_set_impl(impl));
      // One-shot and an uneven three-way incremental split must agree.
      const Bytes one_shot = Sha256::hash(data);
      Sha256 split;
      const std::size_t a = len / 3;
      const std::size_t b = a + (len - a) / 2;
      split.update(data.data(), a);
      split.update(data.data() + a, b - a);
      split.update(data.data() + b, len - b);
      EXPECT_EQ(split.digest(), one_shot) << to_string(impl) << " len=" << len;
      digests.push_back(one_shot);
    }
    for (std::size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0])
          << "impl " << to_string(impls[i]) << " diverges at len=" << len;
    }
  }
}

TEST(Sha256, UpdateAfterDigestThrows) {
  Sha256 hasher;
  hasher.digest();
  EXPECT_THROW(hasher.update(Bytes{1}), std::logic_error);
  Sha256 hasher2;
  hasher2.digest();
  EXPECT_THROW(hasher2.digest(), std::logic_error);
}

// Boundary lengths around the 64-byte block / 56-byte padding threshold.
class Sha256Boundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Boundary, MatchesPythonHashlib) {
  // Reference digests for inputs of i bytes of 'x', computed once with a
  // second implementation; spot values pinned here for regression.
  const Bytes input(GetParam(), 'x');
  const Bytes digest = Sha256::hash(input);
  EXPECT_EQ(digest.size(), 32u);
  // Self-consistency: incremental in 1-byte steps must agree.
  Sha256 hasher;
  for (std::uint8_t b : input) hasher.update(&b, 1);
  EXPECT_EQ(hasher.digest(), digest);
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Sha256Boundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 129));

// ----------------------------------------------------------------- SHA-1 --

TEST(Sha1, Abc) {
  EXPECT_EQ(util::to_hex(Sha1::hash(util::bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Empty) {
  EXPECT_EQ(util::to_hex(Sha1::hash({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, TwoBlock) {
  EXPECT_EQ(util::to_hex(Sha1::hash(util::bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

// ------------------------------------------------------------------ HMAC --

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(util::to_hex(hmac_sha256(key, util::bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(util::to_hex(hmac_sha256(
                util::bytes_of("Jefe"),
                util::bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(util::to_hex(hmac_sha256(
                key, util::bytes_of(
                         "Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = util::bytes_of("message");
  EXPECT_NE(hmac_sha256(util::bytes_of("key1"), msg),
            hmac_sha256(util::bytes_of("key2"), msg));
}

// ---------------------------------------------------------------- BigInt --

TEST(BigInt, FromU64) {
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(1).to_u64(), 1u);
  EXPECT_EQ(BigInt(0xffffffffffffffffULL).to_u64(), 0xffffffffffffffffULL);
}

TEST(BigInt, BytesRoundTrip) {
  const Bytes bytes = util::from_hex("0123456789abcdef00112233");
  const BigInt v = BigInt::from_bytes_be(bytes);
  EXPECT_EQ(util::to_hex(v.to_bytes_be()), "0123456789abcdef00112233");
}

TEST(BigInt, LeadingZerosStripped) {
  const BigInt v = BigInt::from_bytes_be(util::from_hex("0000ff"));
  EXPECT_EQ(util::to_hex(v.to_bytes_be()), "ff");
}

TEST(BigInt, PaddedBytes) {
  EXPECT_EQ(BigInt(0x1234).to_bytes_be_padded(4), util::from_hex("00001234"));
  EXPECT_EQ(BigInt(0).to_bytes_be_padded(2), util::from_hex("0000"));
  EXPECT_THROW(BigInt(0x123456).to_bytes_be_padded(2), std::length_error);
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt(1) + BigInt(0xffffffffffffffffULL), BigInt(5));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, AddSubSmall) {
  EXPECT_EQ((BigInt(100) + BigInt(28)).to_u64(), 128u);
  EXPECT_EQ((BigInt(100) - BigInt(28)).to_u64(), 72u);
  EXPECT_THROW(BigInt(1) - BigInt(2), std::domain_error);
}

TEST(BigInt, CarryPropagation) {
  const BigInt max32(0xffffffffULL);
  EXPECT_EQ((max32 + BigInt(1)).to_u64(), 0x100000000ULL);
  const BigInt max64(0xffffffffffffffffULL);
  const BigInt sum = max64 + BigInt(1);
  EXPECT_EQ(util::to_hex(sum.to_bytes_be()), "010000000000000000");
}

TEST(BigInt, MulSmall) {
  EXPECT_EQ((BigInt(123456) * BigInt(654321)).to_u64(), 80779853376ULL);
  EXPECT_TRUE((BigInt(0) * BigInt(12345)).is_zero());
}

TEST(BigInt, DivModSmall) {
  const auto dm = BigInt::divmod(BigInt(100), BigInt(7));
  EXPECT_EQ(dm.quotient.to_u64(), 14u);
  EXPECT_EQ(dm.remainder.to_u64(), 2u);
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt v = BigInt::from_bytes_be(util::from_hex("deadbeefcafebabe"));
  for (std::size_t s : {1u, 7u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(v.shl(s).shr(s), v) << s;
  }
  EXPECT_TRUE(BigInt(1).shr(1).is_zero());
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ(BigInt(1).shl(100).bit_length(), 101u);
}

TEST(BigInt, ModExpKnownValues) {
  // 5^117 mod 19 = 1 (Fermat: 5^18=1, 117 = 6*18+9, 5^9 mod 19 = 1).
  EXPECT_EQ(BigInt::mod_exp(BigInt(5), BigInt(117), BigInt(19)).to_u64(), 1u);
  EXPECT_EQ(BigInt::mod_exp(BigInt(4), BigInt(13), BigInt(497)).to_u64(), 445u);
  EXPECT_EQ(BigInt::mod_exp(BigInt(2), BigInt(0), BigInt(7)).to_u64(), 1u);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).to_u64(), 12u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
}

TEST(BigInt, ModInverse) {
  // 3 * 7 = 21 = 1 mod 10.
  EXPECT_EQ(BigInt::mod_inverse(BigInt(3), BigInt(10)).to_u64(), 7u);
  // gcd(4, 10) = 2: no inverse.
  EXPECT_TRUE(BigInt::mod_inverse(BigInt(4), BigInt(10)).is_zero());
  // 65537 * 73473 = 4,815,200,001 = 1 (mod 100000).
  EXPECT_EQ(BigInt::mod_inverse(BigInt(65537), BigInt(100000)).to_u64(), 73473u);
}

TEST(BigInt, MillerRabinKnownPrimes) {
  util::Rng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 101ULL, 65537ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigInt::is_probable_prime(BigInt(p), 20, rng)) << p;
  }
}

TEST(BigInt, MillerRabinKnownComposites) {
  util::Rng rng(2);
  // Includes Carmichael numbers 561 and 41041.
  for (std::uint64_t c : {1ULL, 4ULL, 100ULL, 561ULL, 41041ULL, 65541ULL,
                          2147483647ULL * 2}) {
    EXPECT_FALSE(BigInt::is_probable_prime(BigInt(c), 20, rng)) << c;
  }
}

TEST(BigInt, GeneratePrimeHasRequestedWidth) {
  util::Rng rng(3);
  const BigInt p = BigInt::generate_prime(96, rng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(BigInt::is_probable_prime(p, 30, rng));
}

// Property suite: algebraic identities over random operands.
class BigIntProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntProperty, AddSubInverse) {
  util::Rng rng(GetParam());
  const BigInt a = BigInt::random_bits(200, rng);
  const BigInt b = BigInt::random_bits(150, rng);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a + b) - a, b);
}

TEST_P(BigIntProperty, MulDivIdentity) {
  util::Rng rng(GetParam() + 1000);
  const BigInt a = BigInt::random_bits(256, rng);
  BigInt b = BigInt::random_bits(120, rng);
  if (b.is_zero()) b = BigInt(1);
  const auto dm = BigInt::divmod(a, b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST_P(BigIntProperty, MulCommutesAndDistributes) {
  util::Rng rng(GetParam() + 2000);
  const BigInt a = BigInt::random_bits(100, rng);
  const BigInt b = BigInt::random_bits(100, rng);
  const BigInt c = BigInt::random_bits(100, rng);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_P(BigIntProperty, ModExpMatchesNaive) {
  util::Rng rng(GetParam() + 3000);
  const std::uint64_t base = rng.uniform(1000) + 2;
  const std::uint64_t exp = rng.uniform(24);
  const std::uint64_t mod = rng.uniform(10000) + 2;
  std::uint64_t expected = 1 % mod;
  for (std::uint64_t i = 0; i < exp; ++i) expected = expected * base % mod;
  EXPECT_EQ(
      BigInt::mod_exp(BigInt(base), BigInt(exp), BigInt(mod)).to_u64(),
      expected);
}

TEST_P(BigIntProperty, ModInverseIsInverse) {
  util::Rng rng(GetParam() + 4000);
  const BigInt m = BigInt::generate_prime(64, rng);
  BigInt a = BigInt::random_bits(60, rng);
  if (a.is_zero()) a = BigInt(7);
  const BigInt inv = BigInt::mod_inverse(a, m);
  ASSERT_FALSE(inv.is_zero());
  EXPECT_EQ(((a * inv) % m).to_u64(), 1u);
}

TEST_P(BigIntProperty, BytesRoundTrip) {
  util::Rng rng(GetParam() + 5000);
  const BigInt v = BigInt::random_bits(1 + rng.uniform(300), rng);
  EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be()), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(BigIntDivisionStress, AgainstInt128GroundTruth) {
  // 10,000 random 128/64-bit divisions checked against __int128 arithmetic;
  // dividend top limbs are often saturated (0xffffffff) to push Knuth D
  // through its trial-quotient correction and rare add-back branches.
  util::Rng rng(0xd171);
  for (int round = 0; round < 10000; ++round) {
    unsigned __int128 a = (static_cast<unsigned __int128>(rng.next_u64()) << 64) |
                          rng.next_u64();
    if (round % 3 == 0) {
      // Saturate the top 32 bits to stress the qhat clamp.
      a |= static_cast<unsigned __int128>(0xffffffffULL) << 96;
    }
    std::uint64_t b = rng.next_u64();
    if (round % 5 == 0) b |= 0xffffffff00000000ULL;  // big divisor
    if (b == 0) b = 1;

    util::Bytes a_bytes(16);
    for (int i = 0; i < 16; ++i) {
      a_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(a >> (120 - 8 * i));
    }
    const BigInt big_a = BigInt::from_bytes_be(a_bytes);
    const BigInt big_b(b);
    const auto dm = BigInt::divmod(big_a, big_b);

    const unsigned __int128 q = a / b;
    const unsigned __int128 r = a % b;
    util::Bytes q_bytes(16);
    for (int i = 0; i < 16; ++i) {
      q_bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(q >> (120 - 8 * i));
    }
    ASSERT_EQ(dm.quotient, BigInt::from_bytes_be(q_bytes)) << "round " << round;
    ASSERT_EQ(dm.remainder.to_u64(), static_cast<std::uint64_t>(r))
        << "round " << round;
  }
}

TEST(BigIntDivisionStress, WideOperandsIdentity) {
  // Wider random divisions (up to 1024/512 bits) hold the Euclidean
  // identity; complements the __int128 cross-check above.
  util::Rng rng(0xbead);
  for (int round = 0; round < 500; ++round) {
    const std::size_t a_bits = 64 + rng.uniform(960);
    const std::size_t b_bits = 32 + rng.uniform(a_bits);
    const BigInt a = BigInt::random_bits(a_bits, rng);
    BigInt b = BigInt::random_bits(b_bits, rng);
    if (b.is_zero()) b = BigInt(3);
    const auto dm = BigInt::divmod(a, b);
    ASSERT_EQ(dm.quotient * b + dm.remainder, a) << "round " << round;
    ASSERT_LT(dm.remainder, b) << "round " << round;
  }
}

// ------------------------------------------------------------------- RSA --

class RsaFixture : public ::testing::Test {
 protected:
  static const RsaKeyPair& key() {
    static const RsaKeyPair kp = [] {
      util::Rng rng(424242);
      return RsaKeyPair::generate(512, rng);
    }();
    return kp;
  }
};

TEST_F(RsaFixture, SignVerifyRoundTrip) {
  const Bytes msg = util::bytes_of("attack at dawn");
  const Bytes sig = rsa_sign_sha256(key(), msg);
  EXPECT_EQ(sig.size(), key().public_key.modulus_bytes());
  EXPECT_TRUE(rsa_verify_sha256(key().public_key, msg, sig));
}

TEST_F(RsaFixture, TamperedMessageFails) {
  const Bytes msg = util::bytes_of("attack at dawn");
  const Bytes sig = rsa_sign_sha256(key(), msg);
  EXPECT_FALSE(rsa_verify_sha256(key().public_key,
                                 util::bytes_of("attack at dusk"), sig));
}

TEST_F(RsaFixture, TamperedSignatureFails) {
  const Bytes msg = util::bytes_of("m");
  Bytes sig = rsa_sign_sha256(key(), msg);
  sig[5] ^= 0x01;
  EXPECT_FALSE(rsa_verify_sha256(key().public_key, msg, sig));
}

TEST_F(RsaFixture, WrongLengthSignatureFails) {
  const Bytes msg = util::bytes_of("m");
  Bytes sig = rsa_sign_sha256(key(), msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify_sha256(key().public_key, msg, sig));
}

TEST_F(RsaFixture, WrongKeyFails) {
  util::Rng rng(777);
  const RsaKeyPair other = RsaKeyPair::generate(512, rng);
  const Bytes msg = util::bytes_of("m");
  const Bytes sig = rsa_sign_sha256(key(), msg);
  EXPECT_FALSE(rsa_verify_sha256(other.public_key, msg, sig));
}

TEST_F(RsaFixture, PublicKeyDerRoundTrip) {
  const Bytes der = key().public_key.encode_der();
  const RsaPublicKey decoded = RsaPublicKey::decode_der(der);
  EXPECT_EQ(decoded.modulus, key().public_key.modulus);
  EXPECT_EQ(decoded.public_exponent, key().public_key.public_exponent);
}

TEST_F(RsaFixture, DeterministicSignature) {
  const Bytes msg = util::bytes_of("same message");
  EXPECT_EQ(rsa_sign_sha256(key(), msg), rsa_sign_sha256(key(), msg));
}

TEST(Rsa, RejectsTinyModulus) {
  util::Rng rng(1);
  EXPECT_THROW(RsaKeyPair::generate(128, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- Signer --

TEST(Signer, SimKeySignVerify) {
  util::Rng rng(5);
  const KeyPair kp = KeyPair::generate_sim(rng);
  const Bytes msg = util::bytes_of("payload");
  const Bytes sig = kp.sign(msg);
  EXPECT_TRUE(kp.public_key().verify(msg, sig));
  EXPECT_FALSE(kp.public_key().verify(util::bytes_of("other"), sig));
}

TEST(Signer, SimKeysAreDistinct) {
  util::Rng rng(6);
  const KeyPair a = KeyPair::generate_sim(rng);
  const KeyPair b = KeyPair::generate_sim(rng);
  const Bytes msg = util::bytes_of("m");
  EXPECT_FALSE(b.public_key().verify(msg, a.sign(msg)));
}

TEST(Signer, RsaThroughInterface) {
  util::Rng rng(7);
  const KeyPair kp = KeyPair::generate_rsa(512, rng);
  EXPECT_EQ(kp.algorithm(), SignatureAlgorithm::kRsaSha256);
  const Bytes msg = util::bytes_of("interface message");
  EXPECT_TRUE(kp.public_key().verify(msg, kp.sign(msg)));
}

TEST(Signer, PublicKeyWireRoundTrip) {
  util::Rng rng(8);
  const KeyPair kp = KeyPair::generate_sim(rng);
  auto decoded = PublicKey::decode(kp.public_key().encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), kp.public_key());
}

TEST(Signer, PublicKeyDecodeRejectsGarbage) {
  EXPECT_FALSE(PublicKey::decode({}).ok());
  EXPECT_FALSE(PublicKey::decode({0x77, 1, 2, 3}).ok());
}

TEST(Signer, CrossAlgorithmVerifyFails) {
  util::Rng rng(9);
  const KeyPair sim = KeyPair::generate_sim(rng);
  const KeyPair rsa = KeyPair::generate_rsa(512, rng);
  const Bytes msg = util::bytes_of("m");
  EXPECT_FALSE(rsa.public_key().verify(msg, sim.sign(msg)));
  EXPECT_FALSE(sim.public_key().verify(msg, rsa.sign(msg)));
}

}  // namespace
}  // namespace mustaple::crypto
