// Tests for the annotation-based phase profiler (obs/prof.hpp): path
// interning, scope accounting, the thread-count-invariant merge the
// scanner's fan-out relies on, ring-overflow folding, reset semantics, and
// the JSON / collapsed-stack exports. The Profiler CLASS is exercised
// directly (not via OBS_PROF_* macros) so this file compiles and passes
// identically under MUSTAPLE_OBS_OFF.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/prof.hpp"
#include "util/thread_pool.hpp"

namespace mustaple::obs {
namespace {

// (path, count) pairs in the snapshot's deterministic order.
std::vector<std::pair<std::string, std::uint64_t>> shape(
    const Profiler& profiler) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const Profiler::Entry& entry : profiler.snapshot()) {
    out.emplace_back(entry.path, entry.stats.count);
  }
  return out;
}

TEST(Profiler, InternIsStableAndContentKeyed) {
  Profiler profiler;
  const auto a = profiler.intern(Profiler::kRoot, "scan");
  const auto b = profiler.intern(Profiler::kRoot, "scan");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Profiler::kRoot);

  // Same name under a different parent is a different path.
  const auto child = profiler.intern(a, "step");
  const auto other = profiler.intern(Profiler::kRoot, "step");
  EXPECT_NE(child, other);
  // Content-keyed: a distinct char buffer with equal contents interns to
  // the same id.
  const std::string scan_copy = std::string("sc") + "an";
  EXPECT_EQ(profiler.intern(Profiler::kRoot, scan_copy.c_str()), a);
}

TEST(Profiler, ScopesBuildNestedPaths) {
  Profiler profiler;
  {
    ProfScope study("study", profiler);
    {
      ProfScope scan("scan", profiler);
      ProfScope step("step", profiler);
    }
    ProfScope audit("audit", profiler);
  }
  const auto entries = profiler.snapshot();
  std::vector<std::string> paths;
  for (const auto& e : entries) paths.push_back(e.path);
  EXPECT_EQ(paths, (std::vector<std::string>{
                       "study", "study;audit", "study;scan",
                       "study;scan;step"}));
  for (const auto& e : entries) {
    EXPECT_EQ(e.stats.count, 1u) << e.path;
    EXPECT_EQ(e.depth, static_cast<int>(
                           1 + std::count(e.path.begin(), e.path.end(), ';')))
        << e.path;
  }
}

TEST(Profiler, CurrentPathTracksTheOpenStack) {
  Profiler profiler;
  EXPECT_EQ(profiler.current_path(), Profiler::kRoot);
  {
    ProfScope outer("outer", profiler);
    const auto outer_path = profiler.current_path();
    EXPECT_NE(outer_path, Profiler::kRoot);
    {
      ProfScope inner("inner", profiler);
      EXPECT_NE(profiler.current_path(), outer_path);
    }
    EXPECT_EQ(profiler.current_path(), outer_path);
  }
  EXPECT_EQ(profiler.current_path(), Profiler::kRoot);
}

TEST(Profiler, SelfWallExcludesDirectChildren) {
  Profiler profiler;
  {
    ProfScope parent("parent", profiler);
    ProfScope child("child", profiler);
  }
  const auto entries = profiler.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  const auto& parent = entries[0];
  const auto& child = entries[1];
  ASSERT_EQ(parent.path, "parent");
  ASSERT_EQ(child.path, "parent;child");
  EXPECT_LE(child.stats.wall_ns, parent.stats.wall_ns);
  EXPECT_LE(parent.self_wall_ns, parent.stats.wall_ns);
  EXPECT_EQ(parent.self_wall_ns, parent.stats.wall_ns - child.stats.wall_ns);
  // A leaf's self time is its whole time.
  EXPECT_EQ(child.self_wall_ns, child.stats.wall_ns);
}

TEST(Profiler, RingOverflowFoldsWithoutLosingCounts) {
  Profiler profiler;
  constexpr std::size_t kScopes = 5000;  // well past the 1024-entry ring
  for (std::size_t i = 0; i < kScopes; ++i) {
    ProfScope scope("tick", profiler);
  }
  const auto entries = profiler.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].stats.count, kScopes);
}

// The property the scanner's two-phase fan-out depends on: the same
// logical workload produces the same path set and per-path counts no
// matter how many pool workers ran it, because worker scopes attach under
// an explicit parent token instead of the worker thread's (empty) stack.
TEST(Profiler, MergeIsThreadCountInvariant) {
  auto run = [](std::size_t threads) {
    Profiler profiler;
    {
      ProfScope campaign("campaign", profiler);
      for (int step = 0; step < 3; ++step) {
        ProfScope step_scope("step", profiler);
        const auto parent = profiler.current_path();
        util::ThreadPool pool(threads);
        pool.parallel_for_index(97, [&](std::size_t) {
          ProfScope probe("probe", parent, profiler);
        });
      }
    }
    return shape(profiler);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto four = run(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  const std::vector<std::pair<std::string, std::uint64_t>> expected{
      {"campaign", 1},
      {"campaign;step", 3},
      {"campaign;step;probe", 3 * 97},
  };
  EXPECT_EQ(one, expected);
}

TEST(Profiler, ResetZeroesStatsButKeepsInternedPaths) {
  Profiler profiler;
  const auto path = profiler.intern(Profiler::kRoot, "phase");
  {
    ProfScope scope("phase", profiler);
  }
  ASSERT_EQ(profiler.snapshot().size(), 1u);
  profiler.reset();
  EXPECT_TRUE(profiler.snapshot().empty());  // zero-count paths are elided
  // The id survives reset: recording against it works and re-interning
  // returns the same id.
  EXPECT_EQ(profiler.intern(Profiler::kRoot, "phase"), path);
  profiler.record(path, 10, 5);
  const auto entries = profiler.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].stats.count, 1u);
  EXPECT_EQ(entries[0].stats.wall_ns, 10u);
}

TEST(Profiler, TopPhasesSortsByWallTime) {
  Profiler profiler;
  const auto heavy = profiler.intern(Profiler::kRoot, "heavy");
  const auto light = profiler.intern(Profiler::kRoot, "light");
  profiler.record(light, 100, 0);
  profiler.record(heavy, 10'000, 0);
  const auto top = profiler.top_phases(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].path, "heavy");
}

TEST(Profiler, RenderJsonCarriesSchemaAndPhases) {
  Profiler profiler;
  {
    ProfScope scope("alpha", profiler);
  }
  const std::string json = profiler.render_json();
  EXPECT_NE(json.find("\"schema\":\"mustaple-profile/1\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Profiler, RenderFoldedEmitsOneLinePerPath) {
  Profiler profiler;
  {
    ProfScope outer("outer", profiler);
    ProfScope inner("inner", profiler);
  }
  const std::string folded = profiler.render_folded();
  EXPECT_NE(folded.find("outer "), std::string::npos);
  EXPECT_NE(folded.find("outer;inner "), std::string::npos);
  // Every non-comment line is "path<space>integer".
  std::size_t start = 0;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find_first_not_of("0123456789"), std::string::npos)
        << line;
  }
}

TEST(Profiler, SummaryMentionsTopPhase) {
  Profiler profiler;
  {
    ProfScope scope("the-phase", profiler);
  }
  const std::string summary = profiler.summary(5);
  EXPECT_NE(summary.find("the-phase"), std::string::npos);
}

}  // namespace
}  // namespace mustaple::obs
