// DER codec tests: every value type round-trips; malformed input is
// rejected with classified errors (this is the machinery behind the paper's
// "ASN.1 Unparseable" bucket).
#include <gtest/gtest.h>

#include "asn1/der.hpp"
#include "asn1/oid.hpp"
#include "crl/crl.hpp"
#include "ocsp/response.hpp"
#include "util/bytes.hpp"
#include "x509/certificate.hpp"

namespace mustaple::asn1 {
namespace {

using util::Bytes;

// ------------------------------------------------------------------ OID --

TEST(Oid, ToString) {
  EXPECT_EQ(oids::tls_feature().to_string(), "1.3.6.1.5.5.7.1.24");
  EXPECT_EQ(oids::sha256_with_rsa().to_string(), "1.2.840.113549.1.1.11");
}

TEST(Oid, ParseValid) {
  auto oid = Oid::parse("1.3.6.1.5.5.7.1.24");
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(oid.value(), oids::tls_feature());
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::parse("").ok());
  EXPECT_FALSE(Oid::parse("1").ok());
  EXPECT_FALSE(Oid::parse("1..2").ok());
  EXPECT_FALSE(Oid::parse("1.a.2").ok());
  EXPECT_FALSE(Oid::parse("3.1").ok());    // first arc > 2
  EXPECT_FALSE(Oid::parse("1.40").ok());   // second arc > 39 for first < 2
  EXPECT_FALSE(Oid::parse("1.2.4294967296").ok());  // arc overflow
}

TEST(Oid, KnownEncoding) {
  // 1.2.840.113549 encodes as 2a 86 48 86 f7 0d.
  auto oid = Oid::parse("1.2.840.113549");
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(util::to_hex(oid.value().encode_content()), "2a864886f70d");
}

TEST(Oid, DecodeRejectsTruncatedArc) {
  // High bit set on final byte = unterminated base-128 arc.
  EXPECT_FALSE(Oid::decode_content({0x2a, 0x86}).ok());
}

TEST(Oid, DecodeRejectsEmpty) {
  EXPECT_FALSE(Oid::decode_content(Bytes{}).ok());
}

TEST(Oid, DecodeRejectsLeadingZeroSeptet) {
  EXPECT_FALSE(Oid::decode_content({0x2a, 0x80, 0x01}).ok());
}

class OidRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(OidRoundTrip, EncodeDecode) {
  auto oid = Oid::parse(GetParam());
  ASSERT_TRUE(oid.ok());
  auto decoded = Oid::decode_content(oid.value().encode_content());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), oid.value());
  EXPECT_EQ(decoded.value().to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    WellKnown, OidRoundTrip,
    ::testing::Values("1.3.6.1.5.5.7.1.24", "1.3.6.1.5.5.7.48.1",
                      "2.5.29.31", "2.5.29.19", "2.5.4.3",
                      "1.2.840.113549.1.1.11", "2.16.840.1.101.3.4.2.1",
                      "1.3.14.3.2.26", "0.9.2342.19200300.100.1.25",
                      "2.5.4.6", "1.3.6.1.4.1.99999.1"));

// ----------------------------------------------------------- DER writer --

TEST(DerWriter, ShortFormLength) {
  Writer w;
  w.octet_string(Bytes(10, 0xaa));
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 10);
}

TEST(DerWriter, LongFormLength) {
  Writer w;
  w.octet_string(Bytes(300, 0xbb));
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 0x82);  // two length octets
  EXPECT_EQ(w.bytes()[2], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x2c);
}

TEST(DerWriter, BooleanEncoding) {
  Writer w;
  w.boolean(true);
  w.boolean(false);
  EXPECT_EQ(util::to_hex(w.bytes()), "0101ff010100");
}

TEST(DerWriter, IntegerMinimalEncoding) {
  struct Case {
    std::int64_t value;
    const char* hex;
  };
  const Case cases[] = {
      {0, "020100"},       {1, "020101"},     {127, "02017f"},
      {128, "02020080"},   {256, "02020100"}, {-1, "0201ff"},
      {-128, "020180"},    {-129, "0202ff7f"},
  };
  for (const Case& c : cases) {
    Writer w;
    w.integer(c.value);
    EXPECT_EQ(util::to_hex(w.bytes()), c.hex) << c.value;
  }
}

TEST(DerWriter, IntegerBytesStripsAndPads) {
  {
    Writer w;
    w.integer_bytes({0x00, 0x00, 0x01});  // redundant leading zeros
    EXPECT_EQ(util::to_hex(w.bytes()), "020101");
  }
  {
    Writer w;
    w.integer_bytes({0xff});  // high bit set -> 0x00 pad
    EXPECT_EQ(util::to_hex(w.bytes()), "020200ff");
  }
  {
    Writer w;
    w.integer_bytes({});  // empty -> zero
    EXPECT_EQ(util::to_hex(w.bytes()), "020100");
  }
}

TEST(DerWriter, NullAndOid) {
  Writer w;
  w.null();
  w.oid(oids::sha1());
  EXPECT_EQ(util::to_hex(w.bytes()), "05000605" + std::string("2b0e03021a"));
}

TEST(DerWriter, BitStringPrependsUnusedBits) {
  Writer w;
  w.bit_string({0xde, 0xad}, 3);
  EXPECT_EQ(util::to_hex(w.bytes()), "030303dead");
}

TEST(DerWriter, NestedSequences) {
  Writer w;
  w.sequence([](Writer& outer) {
    outer.integer(1);
    outer.sequence([](Writer& inner) { inner.boolean(true); });
  });
  EXPECT_EQ(util::to_hex(w.bytes()), "30080201013003" + std::string("0101ff"));
}

TEST(DerWriter, ContextTags) {
  EXPECT_EQ(context_tag(0, true), 0xa0);
  EXPECT_EQ(context_tag(0, false), 0x80);
  EXPECT_EQ(context_tag(3, true), 0xa3);
  EXPECT_EQ(context_tag(6, false), 0x86);
}

TEST(DerWriter, ExplicitContextWraps) {
  Writer w;
  w.explicit_context(0, [](Writer& inner) { inner.integer(2); });
  EXPECT_EQ(util::to_hex(w.bytes()), "a003020102");
}

// ----------------------------------------------------------- DER reader --

TEST(DerReader, ReadsWhatWriterWrote) {
  Writer w;
  w.sequence([](Writer& seq) {
    seq.integer(42);
    seq.boolean(true);
    seq.utf8_string("hello");
    seq.octet_string({1, 2, 3});
    seq.oid(oids::aia_ocsp());
    seq.null();
    seq.generalized_time(util::make_time(2018, 5, 1, 12, 0, 0));
    seq.enumerated(3);
  });
  const Bytes der = w.take();

  Reader top(der);
  auto seq = top.expect(Tag::kSequence);
  ASSERT_TRUE(seq.ok());
  Reader r(seq.value().content);
  EXPECT_EQ(r.read_integer().value(), 42);
  EXPECT_EQ(r.read_boolean().value(), true);
  EXPECT_EQ(r.read_string().value(), "hello");
  EXPECT_EQ(r.read_octet_string().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.read_oid().value(), oids::aia_ocsp());
  ASSERT_TRUE(r.expect(Tag::kNull).ok());
  EXPECT_EQ(r.read_generalized_time().value(),
            util::make_time(2018, 5, 1, 12, 0, 0));
  EXPECT_EQ(r.read_enumerated().value(), 3);
  EXPECT_TRUE(r.at_end());
}

TEST(DerReader, RejectsTruncatedHeader) {
  const Bytes empty;
  Reader r(empty);
  EXPECT_FALSE(r.read_any().ok());
  const Bytes just_tag = {0x30};
  Reader r2(just_tag);
  EXPECT_FALSE(r2.read_any().ok());
}

TEST(DerReader, RejectsTruncatedContent) {
  const Bytes der = {0x04, 0x05, 0x01, 0x02};  // claims 5, has 2
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.truncated");
}

TEST(DerReader, RejectsIndefiniteLength) {
  const Bytes der = {0x30, 0x80, 0x00, 0x00};
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.indefinite_length");
}

TEST(DerReader, RejectsNonMinimalLength) {
  const Bytes der = {0x04, 0x81, 0x03, 0x01, 0x02, 0x03};  // long form for 3
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.non_minimal_length");
}

TEST(DerReader, RejectsTruncatedLengthOfLength) {
  // Header claims four length octets but the buffer ends immediately.
  const Bytes der = {0x30, 0x84, 0x00};
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.truncated");
}

TEST(DerReader, RejectsOversizedLengthOfLength) {
  // Nine length octets cannot fit in a size_t; classified, not crashed.
  Bytes der = {0x30, 0x89};
  der.insert(der.end(), 9, 0xff);
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.bad_length");
}

TEST(DerReader, RejectsLeadingZeroLongFormLength) {
  // 0x82 0x00 0x85: the value 133 fits in one length octet, so the leading
  // zero makes this a non-minimal (BER, not DER) encoding.
  Bytes der = {0x04, 0x82, 0x00, 0x85};
  der.insert(der.end(), 133, 0xab);
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.non_minimal_length");
}

TEST(DerReader, RejectsHugeClaimedLength) {
  // Length decodes fine (2^32) but vastly exceeds the remaining buffer.
  const Bytes der = {0x30, 0x85, 0x01, 0x00, 0x00, 0x00, 0x00, 0x02, 0x01};
  Reader r(der);
  auto result = r.read_any();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.truncated");
}

// Build a SEQUENCE nested `depth` levels deep, innermost-out, without using
// Writer recursion. Each level is small, so headers stay short-form.
Bytes deeply_nested_sequence(std::size_t depth) {
  Bytes der = {0x30, 0x00};
  for (std::size_t i = 1; i < depth; ++i) {
    Bytes wrapped;
    wrapped.reserve(der.size() + 4);
    wrapped.push_back(0x30);
    if (der.size() < 0x80) {
      wrapped.push_back(static_cast<std::uint8_t>(der.size()));
    } else if (der.size() <= 0xff) {
      wrapped.push_back(0x81);
      wrapped.push_back(static_cast<std::uint8_t>(der.size()));
    } else {
      wrapped.push_back(0x82);
      wrapped.push_back(static_cast<std::uint8_t>(der.size() >> 8));
      wrapped.push_back(static_cast<std::uint8_t>(der.size() & 0xff));
    }
    wrapped.insert(wrapped.end(), der.begin(), der.end());
    der = std::move(wrapped);
  }
  return der;
}

// The Reader itself is pull-based and non-recursive, so nesting depth only
// matters to recursive consumers. Every top-level parser in the library must
// fail gracefully (classified Result, no stack overflow) on a 5000-deep
// nest — this is exactly the shape of input the paper's "ASN.1 Unparseable"
// responders emit in the wild.
TEST(DerReader, DeeplyNestedInputFailsGracefully) {
  const Bytes der = deeply_nested_sequence(5000);
  Reader r(der);
  auto top = r.read_any();
  ASSERT_TRUE(top.ok());  // the outermost TLV itself is well-formed
  EXPECT_EQ(top.value().tag, static_cast<std::uint8_t>(Tag::kSequence));

  EXPECT_FALSE(x509::Certificate::parse(der).ok());
  EXPECT_FALSE(crl::Crl::parse(der).ok());
  EXPECT_FALSE(ocsp::OcspResponse::parse(der).ok());
}

TEST(DerReader, RejectsWrongTag) {
  Writer w;
  w.integer(1);
  Reader r(w.bytes());
  auto result = r.expect(Tag::kOctetString);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.unexpected_tag");
}

TEST(DerReader, RejectsBadBoolean) {
  const Bytes der = {0x01, 0x02, 0xff, 0xff};  // boolean with 2 octets
  Reader r(der);
  EXPECT_FALSE(r.read_boolean().ok());
}

TEST(DerReader, RejectsOversizedInteger) {
  const Bytes der = {0x02, 0x09, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Reader r(der);
  auto result = r.read_integer();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.integer_overflow");
}

TEST(DerReader, RejectsNegativeIntegerBytes) {
  Writer w;
  w.integer(-5);
  Reader r(w.bytes());
  EXPECT_FALSE(r.read_integer_bytes().ok());
}

TEST(DerReader, IntegerBytesStripsPad) {
  Writer w;
  w.integer_bytes({0xff, 0x01});
  Reader r(w.bytes());
  EXPECT_EQ(r.read_integer_bytes().value(), (Bytes{0xff, 0x01}));
}

TEST(DerReader, RejectsBadBitString) {
  const Bytes empty = {0x03, 0x00};
  Reader r(empty);
  EXPECT_FALSE(r.read_bit_string().ok());
  const Bytes bad_unused = {0x03, 0x02, 0x09, 0xff};
  Reader r2(bad_unused);
  EXPECT_FALSE(r2.read_bit_string().ok());
}

TEST(DerReader, RejectsBadGeneralizedTime) {
  Writer w;
  w.tlv(static_cast<std::uint8_t>(Tag::kGeneralizedTime),
        util::bytes_of("20189925120000Z"));
  Reader r(w.bytes());
  auto result = r.read_generalized_time();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "asn1.bad_time");
}

TEST(DerReader, PeekTagDoesNotConsume) {
  Writer w;
  w.integer(1);
  Reader r(w.bytes());
  EXPECT_EQ(r.peek_tag(), 0x02);
  EXPECT_EQ(r.peek_tag(), 0x02);
  EXPECT_TRUE(r.read_integer().ok());
  EXPECT_EQ(r.peek_tag(), 0);  // at end
}

// -------------------------------------------- view-vs-owning equivalence --

// The view read family must be observably identical to the owning one:
// same bytes on success, same error codes on malformed input. Only the
// allocation behavior differs (checked via data() pointers below).
TEST(DerReaderView, ViewReadsMatchOwningReads) {
  Writer w;
  w.sequence([](Writer& seq) {
    seq.octet_string({9, 8, 7});
    seq.bit_string({0xaa, 0xbb});
    seq.integer_bytes({0x01, 0x02, 0x03});
    seq.integer(77);
  });
  const Bytes der = w.take();

  Reader owning(der);
  auto seq_owned = owning.expect(Tag::kSequence);
  ASSERT_TRUE(seq_owned.ok());
  Reader ro(seq_owned.value().content);

  Reader viewing(der);
  auto seq_view = viewing.expect_view(Tag::kSequence);
  ASSERT_TRUE(seq_view.ok());
  EXPECT_EQ(seq_view.value().tag, seq_owned.value().tag);
  Reader rv = reader_over(seq_view.value());

  EXPECT_EQ(rv.read_octet_string_view().value().to_bytes(),
            ro.read_octet_string().value());
  EXPECT_EQ(rv.read_bit_string_view().value().to_bytes(),
            ro.read_bit_string().value());
  EXPECT_EQ(rv.read_integer_bytes_view().value().to_bytes(),
            ro.read_integer_bytes().value());
  // read_any_view sees the same trailing TLV as read_any.
  auto any_owned = ro.read_any();
  auto any_view = rv.read_any_view();
  ASSERT_TRUE(any_owned.ok());
  ASSERT_TRUE(any_view.ok());
  EXPECT_EQ(any_view.value().tag, any_owned.value().tag);
  EXPECT_EQ(any_view.value().to_tlv().content, any_owned.value().content);
  EXPECT_TRUE(ro.at_end());
  EXPECT_TRUE(rv.at_end());
}

TEST(DerReaderView, ViewsBorrowFromTheSourceBuffer) {
  Writer w;
  w.octet_string({1, 2, 3, 4});
  const Bytes der = w.take();
  Reader r(der);
  const auto view = r.read_octet_string_view();
  ASSERT_TRUE(view.ok());
  // Zero-copy: the view points INTO der, not at a copy.
  EXPECT_GE(view.value().data(), der.data());
  EXPECT_LE(view.value().data() + view.value().size(),
            der.data() + der.size());
}

TEST(DerReaderView, NestedViewsOutliveIntermediateTemporaries) {
  // A view obtained through nested expect_view calls points into the
  // ORIGINAL buffer, so it stays valid after every intermediate
  // TlvView/Result has gone out of scope.
  Writer w;
  w.sequence([](Writer& outer) {
    outer.sequence([](Writer& inner) { inner.octet_string({42, 43}); });
  });
  const Bytes der = w.take();
  util::BytesView leaf;
  {
    Reader top(der);
    auto outer = top.expect_view(Tag::kSequence);
    ASSERT_TRUE(outer.ok());
    Reader mid = reader_over(outer.value());
    auto inner = mid.expect_view(Tag::kSequence);
    ASSERT_TRUE(inner.ok());
    Reader leaf_reader = reader_over(inner.value());
    auto octets = leaf_reader.read_octet_string_view();
    ASSERT_TRUE(octets.ok());
    leaf = octets.value();
  }  // outer/inner Results and Readers destroyed; der still alive
  EXPECT_EQ(leaf.to_bytes(), (Bytes{42, 43}));
}

TEST(DerReaderView, ViewErrorsMatchOwningErrorCodes) {
  const struct {
    const char* name;
    Bytes der;
  } kMalformed[] = {
      {"truncated content", {0x04, 0x05, 0x01, 0x02}},
      {"truncated header", {0x30}},
      {"indefinite length", {0x30, 0x80, 0x00, 0x00}},
      {"non-minimal length", {0x04, 0x81, 0x03, 0x01, 0x02, 0x03}},
      {"empty", {}},
  };
  for (const auto& c : kMalformed) {
    Reader ro(c.der);
    Reader rv(c.der);
    auto owned = ro.read_any();
    auto viewed = rv.read_any_view();
    ASSERT_FALSE(owned.ok()) << c.name;
    ASSERT_FALSE(viewed.ok()) << c.name;
    EXPECT_EQ(viewed.error().code, owned.error().code) << c.name;
  }

  // Typed readers: wrong tag, bad integer, bad bit string.
  {
    Writer w;
    w.integer(1);
    Reader ro(w.bytes());
    Reader rv(w.bytes());
    auto owned = ro.expect(Tag::kOctetString);
    auto viewed = rv.expect_view(Tag::kOctetString);
    ASSERT_FALSE(owned.ok());
    ASSERT_FALSE(viewed.ok());
    EXPECT_EQ(viewed.error().code, owned.error().code);
  }
  {
    Writer w;
    w.integer(-5);  // negative magnitude rejected by integer_bytes
    Reader ro(w.bytes());
    Reader rv(w.bytes());
    auto owned = ro.read_integer_bytes();
    auto viewed = rv.read_integer_bytes_view();
    ASSERT_FALSE(owned.ok());
    ASSERT_FALSE(viewed.ok());
    EXPECT_EQ(viewed.error().code, owned.error().code);
  }
  {
    const Bytes empty_bits = {0x03, 0x00};
    Reader ro(empty_bits);
    Reader rv(empty_bits);
    auto owned = ro.read_bit_string();
    auto viewed = rv.read_bit_string_view();
    ASSERT_FALSE(owned.ok());
    ASSERT_FALSE(viewed.ok());
    EXPECT_EQ(viewed.error().code, owned.error().code);
  }
}

TEST(DerReader, NegativeIntegersRoundTrip) {
  const std::int64_t values[] = {-1,     -127,      -128,     -129,
                                 -65536, INT64_MIN, INT64_MAX};
  for (std::int64_t v : values) {
    Writer w;
    w.integer(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.read_integer().value(), v) << v;
  }
}

// Property: arbitrary octet strings of many lengths round-trip (covers the
// short/long length-form boundary at 128 and multi-octet lengths).
class OctetStringRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OctetStringRoundTrip, EncodeDecode) {
  Bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  Writer w;
  w.octet_string(payload);
  Reader r(w.bytes());
  auto result = r.read_octet_string();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), payload);
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Lengths, OctetStringRoundTrip,
                         ::testing::Values(0, 1, 127, 128, 129, 255, 256,
                                           65535, 65536, 70000));

}  // namespace
}  // namespace mustaple::asn1
