// mustaple::lint tests: registry invariants, the Must-Staple round-trip
// staying lint-clean, every rule firing on a purpose-built malformed
// artifact, golden reports per severity, and run_batch's bit-identical
// determinism contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "asn1/oid.hpp"
#include "crl/crl.hpp"
#include "crypto/signer.hpp"
#include "lint/lint.hpp"
#include "ocsp/response.hpp"
#include "ocsp/types.hpp"
#include "x509/certificate.hpp"
#include "x509/name.hpp"

namespace mustaple::lint {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 1, 12);

util::Rng& rng() {
  static util::Rng instance(20180425);
  return instance;
}

const crypto::KeyPair& ca_key() {
  static const crypto::KeyPair key = crypto::KeyPair::generate_sim(rng());
  return key;
}

const x509::DistinguishedName& issuer_dn() {
  static const x509::DistinguishedName dn{"Lint Test CA", "Lint", "US"};
  return dn;
}

const x509::Certificate& issuer_cert() {
  static const x509::Certificate cert =
      x509::CertificateBuilder()
          .serial_number(0x11223344556677ULL)
          .subject(issuer_dn())
          .issuer(issuer_dn())
          .validity(kNow - Duration::days(1000), kNow + Duration::days(1000))
          .public_key(ca_key().public_key())
          .ca(true)
          .sign(ca_key());
  return cert;
}

/// A leaf that passes every certificate rule: 8-octet serial, OCSP + CRL
/// pointers, a proper {status_request} TLS Feature, and a sane validity.
x509::Certificate make_clean_leaf(
    const std::function<void(x509::CertificateBuilder&)>& tweak =
        [](x509::CertificateBuilder&) {}) {
  x509::CertificateBuilder builder;
  builder.serial(Bytes{0x4a, 0x3b, 0x2c, 0x1d, 0x5e, 0x6f, 0x70, 0x81})
      .subject(x509::DistinguishedName{"site.example", "", ""})
      .issuer(issuer_dn())
      .validity(kNow - Duration::days(10), kNow + Duration::days(80))
      .public_key(crypto::KeyPair::generate_sim(rng()).public_key())
      .add_ocsp_url("http://ocsp.example/")
      .add_crl_url("http://crl.example/ca.crl")
      .tls_features({5})
      .add_san("site.example");
  tweak(builder);
  return builder.sign(ca_key());
}

std::vector<Finding> lint(const Artifact& artifact) {
  return lint_artifact(RuleRegistry::builtin(), artifact);
}

bool fires(const std::vector<Finding>& findings, std::string_view rule_id) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule_id == rule_id; });
}

std::vector<Finding> lint_cert(const x509::Certificate& cert) {
  return lint(Artifact::certificate("test-cert", cert));
}

// ----------------------------------------------------------- registry --

TEST(Registry, HasTheAdvertisedCatalog) {
  const RuleRegistry& registry = RuleRegistry::builtin();
  EXPECT_GE(registry.size(), 20u);
  EXPECT_NE(registry.by_id("e_cert_must_staple_without_ocsp_url"), nullptr);
  EXPECT_EQ(registry.by_id("no_such_rule"), nullptr);

  // Ids are unique (add() throws on duplicates) and follow the zlint-ish
  // convention that the prefix encodes the severity.
  std::size_t by_kind_total = 0;
  for (const ArtifactKind kind :
       {ArtifactKind::kCertificate, ArtifactKind::kCrl,
        ArtifactKind::kOcspResponse, ArtifactKind::kCrlOcspPair}) {
    by_kind_total += registry.by_kind(kind).size();
  }
  EXPECT_EQ(by_kind_total, registry.size());
  for (const Rule& rule : registry.rules()) {
    ASSERT_FALSE(rule.info.id.empty());
    const char prefix = rule.info.id[0];
    switch (rule.info.severity) {
      case Severity::kFatal: EXPECT_EQ(prefix, 'f') << rule.info.id; break;
      case Severity::kError: EXPECT_EQ(prefix, 'e') << rule.info.id; break;
      case Severity::kWarn: EXPECT_EQ(prefix, 'w') << rule.info.id; break;
      case Severity::kInfo: EXPECT_EQ(prefix, 'i') << rule.info.id; break;
    }
    EXPECT_FALSE(rule.info.citation.empty()) << rule.info.id;
    EXPECT_TRUE(rule.check != nullptr) << rule.info.id;
  }
  std::size_t by_severity_total = 0;
  for (std::size_t s = 0; s < kSeverityCount; ++s) {
    by_severity_total +=
        registry.by_severity(static_cast<Severity>(s)).size();
  }
  EXPECT_EQ(by_severity_total, registry.size());
}

TEST(Registry, RejectsDuplicateIds) {
  RuleRegistry registry;
  Rule rule;
  rule.info.id = "e_dup";
  rule.info.citation = "test";
  rule.check = [](const Artifact&, std::vector<std::string>&) {};
  registry.add(rule);
  EXPECT_THROW(registry.add(rule), std::logic_error);
}

// ------------------------------------------------- Must-Staple round trip --

// The headline positive case: a well-formed Must-Staple certificate
// survives encode -> parse -> lint with zero findings.
TEST(CertificateLint, MustStapleRoundTripIsLintClean) {
  const x509::Certificate cert = make_clean_leaf();
  auto reparsed = x509::Certificate::parse(cert.encode_der());
  ASSERT_TRUE(reparsed.ok());
  ASSERT_TRUE(reparsed.value().extensions().must_staple);

  const std::vector<Finding> findings =
      lint(Artifact::certificate("roundtrip", cert.encode_der()));
  EXPECT_TRUE(findings.empty())
      << findings.size() << " findings, first: "
      << (findings.empty() ? "" : findings[0].rule_id + ": " +
                                      findings[0].message);
}

// -------------------------------------------------------- cert rules --

TEST(CertificateLint, UnparseableIsFatalAndAlone) {
  const std::vector<Finding> findings = lint(Artifact::certificate(
      "garbage", Bytes{'0', 'h', 'e', 'l', 'l', 'o'}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "f_cert_unparseable");
  EXPECT_EQ(findings[0].severity, Severity::kFatal);
}

TEST(CertificateLint, InvertedValidity) {
  const auto cert = make_clean_leaf([](x509::CertificateBuilder& b) {
    b.validity(kNow + Duration::days(10), kNow - Duration::days(10));
  });
  EXPECT_TRUE(fires(lint_cert(cert), "f_cert_validity_inverted"));
}

TEST(CertificateLint, SerialZero) {
  const auto cert = make_clean_leaf(
      [](x509::CertificateBuilder& b) { b.serial(Bytes{0x00}); });
  const auto findings = lint_cert(cert);
  EXPECT_TRUE(fires(findings, "e_cert_serial_zero"));
  // Zero is its own finding, not also "low entropy".
  EXPECT_FALSE(fires(findings, "i_cert_serial_low_entropy"));
}

TEST(CertificateLint, SerialOverlong) {
  const auto cert = make_clean_leaf(
      [](x509::CertificateBuilder& b) { b.serial(Bytes(21, 0x5a)); });
  EXPECT_TRUE(fires(lint_cert(cert), "e_cert_serial_overlong"));
}

TEST(CertificateLint, SerialLowEntropy) {
  const auto cert = make_clean_leaf(
      [](x509::CertificateBuilder& b) { b.serial_number(5); });
  EXPECT_TRUE(fires(lint_cert(cert), "i_cert_serial_low_entropy"));
}

TEST(CertificateLint, ValidityOverlongFiresOnLeavesOnly) {
  const auto leaf = make_clean_leaf([](x509::CertificateBuilder& b) {
    b.validity(kNow, kNow + Duration::days(900));
  });
  EXPECT_TRUE(fires(lint_cert(leaf), "w_cert_validity_overlong"));
  // CA certificates legitimately run long.
  EXPECT_FALSE(
      fires(lint_cert(issuer_cert()), "w_cert_validity_overlong"));
}

TEST(CertificateLint, MustStapleWithoutOcspUrl) {
  x509::CertificateBuilder builder;
  builder.serial(Bytes{0x4a, 0x3b, 0x2c, 0x1d, 0x5e, 0x6f, 0x70, 0x82})
      .subject(x509::DistinguishedName{"unusable.example", "", ""})
      .issuer(issuer_dn())
      .validity(kNow - Duration::days(10), kNow + Duration::days(80))
      .public_key(crypto::KeyPair::generate_sim(rng()).public_key())
      .add_crl_url("http://crl.example/ca.crl")
      .must_staple(true);
  const auto findings = lint_cert(builder.sign(ca_key()));
  EXPECT_TRUE(fires(findings, "e_cert_must_staple_without_ocsp_url"));
}

TEST(CertificateLint, TlsFeatureEmpty) {
  const auto cert = make_clean_leaf(
      [](x509::CertificateBuilder& b) { b.tls_features({}); });
  EXPECT_TRUE(fires(lint_cert(cert), "e_cert_tls_feature_empty"));
}

TEST(CertificateLint, TlsFeatureWithoutStatusRequest) {
  const auto cert = make_clean_leaf(
      [](x509::CertificateBuilder& b) { b.tls_features({17}); });
  EXPECT_TRUE(
      fires(lint_cert(cert), "w_cert_tls_feature_without_status_request"));
}

TEST(CertificateLint, NoRevocationSource) {
  x509::CertificateBuilder builder;
  builder.serial(Bytes{0x4a, 0x3b, 0x2c, 0x1d, 0x5e, 0x6f, 0x70, 0x83})
      .subject(x509::DistinguishedName{"orphan.example", "", ""})
      .issuer(issuer_dn())
      .validity(kNow - Duration::days(10), kNow + Duration::days(80))
      .public_key(crypto::KeyPair::generate_sim(rng()).public_key());
  EXPECT_TRUE(fires(lint_cert(builder.sign(ca_key())),
                    "w_cert_no_revocation_source"));
  EXPECT_FALSE(
      fires(lint_cert(make_clean_leaf()), "w_cert_no_revocation_source"));
}

// --- hand-crafted TBS encodings for the raw-extension rules --------------

void write_algorithm(asn1::Writer& w) {
  w.sequence([](asn1::Writer& alg) {
    alg.oid(asn1::oids::sim_hash_sig());
    alg.null();
  });
}

/// Builds a full, signed certificate whose extension list is written
/// verbatim — shapes the builder refuses to produce (duplicates, wrong
/// criticality) but that Certificate::parse tolerates.
Bytes craft_cert_with_extensions(
    const std::vector<std::tuple<asn1::Oid, bool, Bytes>>& extensions) {
  const crypto::PublicKey key =
      crypto::KeyPair::generate_sim(rng()).public_key();
  asn1::Writer tbs_writer;
  tbs_writer.sequence([&](asn1::Writer& tbs) {
    tbs.explicit_context(0, [](asn1::Writer& v) { v.integer(2); });
    tbs.integer_bytes(Bytes{0x4a, 0x3b, 0x2c, 0x1d, 0x5e, 0x6f, 0x70, 0x84});
    write_algorithm(tbs);
    issuer_dn().encode(tbs);
    tbs.sequence([&](asn1::Writer& validity) {
      validity.generalized_time(kNow - Duration::days(10));
      validity.generalized_time(kNow + Duration::days(80));
    });
    x509::DistinguishedName{"crafted.example", "", ""}.encode(tbs);
    tbs.sequence([&](asn1::Writer& spki) {
      write_algorithm(spki);
      spki.bit_string(key.encode());
    });
    tbs.explicit_context(3, [&](asn1::Writer& wrapper) {
      wrapper.sequence([&](asn1::Writer& exts) {
        for (const auto& [oid, critical, value] : extensions) {
          exts.sequence([&](asn1::Writer& ext) {
            ext.oid(oid);
            if (critical) ext.boolean(true);
            ext.octet_string(value);
          });
        }
      });
    });
  });
  const Bytes tbs = tbs_writer.take();
  asn1::Writer cert;
  cert.sequence([&](asn1::Writer& outer) {
    outer.raw(tbs);
    write_algorithm(outer);
    outer.bit_string(ca_key().sign(tbs));
  });
  return cert.take();
}

Bytes encode_san_value(const std::string& dns) {
  asn1::Writer w;
  w.sequence([&](asn1::Writer& seq) {
    seq.implicit_context(2, util::bytes_of(dns));
  });
  return w.take();
}

Bytes encode_basic_constraints_value(bool is_ca) {
  asn1::Writer w;
  w.sequence([&](asn1::Writer& seq) {
    if (is_ca) seq.boolean(true);
  });
  return w.take();
}

TEST(CertificateLint, DuplicateExtension) {
  const Bytes der = craft_cert_with_extensions(
      {{asn1::oids::subject_alt_name(), false, encode_san_value("a.example")},
       {asn1::oids::subject_alt_name(), false,
        encode_san_value("b.example")}});
  const auto findings = lint(Artifact::certificate("crafted-dup", der));
  EXPECT_FALSE(fires(findings, "f_cert_unparseable"));
  EXPECT_TRUE(fires(findings, "e_cert_duplicate_extension"));
}

TEST(CertificateLint, BasicConstraintsNotCritical) {
  const Bytes der = craft_cert_with_extensions(
      {{asn1::oids::basic_constraints(), false,
        encode_basic_constraints_value(true)}});
  const auto findings = lint(Artifact::certificate("crafted-bc", der));
  EXPECT_FALSE(fires(findings, "f_cert_unparseable"));
  EXPECT_TRUE(fires(findings, "e_cert_basic_constraints_not_critical"));

  // Critical cA=TRUE is the conforming shape.
  const Bytes ok_der = craft_cert_with_extensions(
      {{asn1::oids::basic_constraints(), true,
        encode_basic_constraints_value(true)}});
  EXPECT_FALSE(fires(lint(Artifact::certificate("crafted-bc-ok", ok_der)),
                     "e_cert_basic_constraints_not_critical"));
}

TEST(CertificateLint, UnknownCriticalExtension) {
  const auto policies = asn1::Oid::parse("2.5.29.32");
  ASSERT_TRUE(policies.ok());
  asn1::Writer empty_seq;
  empty_seq.sequence([](asn1::Writer&) {});
  const Bytes der = craft_cert_with_extensions(
      {{policies.value(), true, empty_seq.take()}});
  const auto findings = lint(Artifact::certificate("crafted-crit", der));
  EXPECT_FALSE(fires(findings, "f_cert_unparseable"));
  EXPECT_TRUE(fires(findings, "e_cert_unknown_critical_extension"));
}

// --------------------------------------------------------- CRL rules --

crl::Crl make_crl(const std::function<void(crl::CrlBuilder&)>& tweak) {
  crl::CrlBuilder builder;
  builder.issuer(issuer_dn())
      .this_update(kNow - Duration::hours(1))
      .next_update(kNow + Duration::days(7));
  tweak(builder);
  return builder.sign(ca_key());
}

std::vector<Finding> lint_crl(const crl::Crl& crl, Context ctx = {}) {
  return lint(Artifact::crl_list("test-crl", crl.encode_der(), ctx));
}

TEST(CrlLint, Unparseable) {
  const auto findings =
      lint(Artifact::crl_list("garbage", Bytes{0xde, 0xad, 0xbe, 0xef}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "f_crl_unparseable");
}

TEST(CrlLint, WindowInverted) {
  const auto crl = make_crl([](crl::CrlBuilder& b) {
    b.this_update(kNow).next_update(kNow - Duration::days(1));
  });
  EXPECT_TRUE(fires(lint_crl(crl), "f_crl_window_inverted"));
}

TEST(CrlLint, WindowOverlong) {
  const auto crl = make_crl(
      [](crl::CrlBuilder& b) { b.next_update(kNow + Duration::days(90)); });
  EXPECT_TRUE(fires(lint_crl(crl), "w_crl_window_overlong"));
}

TEST(CrlLint, DuplicateSerial) {
  const auto crl = make_crl([](crl::CrlBuilder& b) {
    const Bytes serial{0xab, 0xcd};
    b.add_entry({serial, kNow - Duration::days(3), std::nullopt});
    b.add_entry({serial, kNow - Duration::days(2), std::nullopt});
  });
  EXPECT_TRUE(fires(lint_crl(crl), "e_crl_duplicate_serial"));
}

TEST(CrlLint, EntryAfterThisUpdate) {
  const auto crl = make_crl([](crl::CrlBuilder& b) {
    b.add_entry({Bytes{0x01}, kNow + Duration::days(3), std::nullopt});
  });
  EXPECT_TRUE(fires(lint_crl(crl), "e_crl_entry_after_this_update"));
}

TEST(CrlLint, EmptyCrlIsInfo) {
  const auto findings = lint_crl(make_crl([](crl::CrlBuilder&) {}));
  EXPECT_TRUE(fires(findings, "i_crl_empty"));
  for (const Finding& f : findings) {
    EXPECT_NE(f.severity, Severity::kError) << f.rule_id;
    EXPECT_NE(f.severity, Severity::kFatal) << f.rule_id;
  }
}

TEST(CrlLint, StaleRequiresClock) {
  const auto crl = make_crl([](crl::CrlBuilder&) {});
  EXPECT_FALSE(fires(lint_crl(crl), "w_crl_stale"));  // clock-free lint
  Context late;
  late.now = kNow + Duration::days(30);
  EXPECT_TRUE(fires(lint_crl(crl, late), "w_crl_stale"));
  Context fresh;
  fresh.now = kNow;
  EXPECT_FALSE(fires(lint_crl(crl, fresh), "w_crl_stale"));
}

// -------------------------------------------------------- OCSP rules --

const Bytes kLeafSerial{0x4a, 0x3b, 0x2c, 0x1d, 0x5e, 0x6f, 0x70, 0x81};

ocsp::SingleResponse make_single(
    const Bytes& serial = kLeafSerial,
    ocsp::CertStatus status = ocsp::CertStatus::kGood) {
  ocsp::SingleResponse single;
  single.cert_id =
      ocsp::CertId::for_certificate(make_clean_leaf(), issuer_cert());
  single.cert_id.serial = serial;
  single.status = status;
  single.this_update = kNow - Duration::hours(2);
  single.next_update = kNow + Duration::days(3);
  return single;
}

ocsp::OcspResponse make_response(
    const std::function<void(ocsp::OcspResponseBuilder&)>& tweak =
        [](ocsp::OcspResponseBuilder&) {},
    const crypto::KeyPair& key = ca_key()) {
  ocsp::OcspResponseBuilder builder;
  builder.produced_at(kNow - Duration::hours(1)).add_single(make_single());
  tweak(builder);
  return builder.sign(key);
}

std::vector<Finding> lint_ocsp(const ocsp::OcspResponse& response,
                               Context ctx = {}) {
  return lint(
      Artifact::ocsp_response("responder.example", response.encode_der(), ctx));
}

TEST(OcspLint, Unparseable) {
  const auto findings =
      lint(Artifact::ocsp_response("garbage", Bytes{'0'}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "e_ocsp_unparseable");
  // Deliberately error, not fatal: the paper's Fig-5 responders really do
  // send this, so a scan of the live ecosystem must not fail the CI gate.
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(OcspLint, WellFormedResponseIsClean) {
  Context ctx;
  ctx.issuer = &issuer_cert();
  ctx.requested_serial = kLeafSerial;
  ctx.now = kNow;
  EXPECT_TRUE(lint_ocsp(make_response(), ctx).empty());
}

TEST(OcspLint, NotSuccessfulIsInfo) {
  const auto response =
      ocsp::OcspResponseBuilder::error(ocsp::ResponseStatus::kTryLater);
  const auto findings = lint_ocsp(response);
  EXPECT_TRUE(fires(findings, "i_ocsp_not_successful"));
  // The emptiness rule only judges successful responses.
  EXPECT_FALSE(fires(findings, "e_ocsp_no_single_responses"));
}

TEST(OcspLint, SuccessfulWithNoSingleResponses) {
  // The DER parser already refuses a successful response with an empty
  // responses list, so over the wire this condition lands in the
  // unparseable class (e_ocsp_no_single_responses covers responses built
  // in-process, e.g. future relaxations of the parser).
  ocsp::OcspResponseBuilder builder;
  builder.produced_at(kNow);
  const auto findings = lint_ocsp(builder.sign(ca_key()));
  ASSERT_TRUE(fires(findings, "e_ocsp_unparseable"));
  EXPECT_NE(findings[0].message.find("ocsp.no_single_responses"),
            std::string::npos);
}

TEST(OcspLint, WindowInverted) {
  const auto response = make_response([](ocsp::OcspResponseBuilder& b) {
    auto single = make_single();
    single.next_update = single.this_update - Duration::hours(1);
    b.add_single(single);
  });
  EXPECT_TRUE(fires(lint_ocsp(response), "e_ocsp_window_inverted"));
}

TEST(OcspLint, ProducedOutsideWindow) {
  ocsp::OcspResponseBuilder builder;
  builder.produced_at(kNow - Duration::days(2)).add_single(make_single());
  EXPECT_TRUE(fires(lint_ocsp(builder.sign(ca_key())),
                    "w_ocsp_produced_outside_window"));
}

TEST(OcspLint, BlankNextUpdate) {
  const auto response = make_response([](ocsp::OcspResponseBuilder& b) {
    auto single = make_single(Bytes{0x99});
    single.next_update = std::nullopt;
    b.add_single(single);
  });
  EXPECT_TRUE(fires(lint_ocsp(response), "w_ocsp_blank_next_update"));
}

TEST(OcspLint, WindowOverlong) {
  const auto response = make_response([](ocsp::OcspResponseBuilder& b) {
    auto single = make_single(Bytes{0x99});
    single.next_update = single.this_update + Duration::days(120);
    b.add_single(single);
  });
  EXPECT_TRUE(fires(lint_ocsp(response), "w_ocsp_window_overlong"));
}

TEST(OcspLint, SerialMismatchSuppressesSignatureJudgment) {
  Context ctx;
  ctx.issuer = &issuer_cert();
  ctx.requested_serial = Bytes{0x77, 0x77};  // nobody answers for this
  const auto findings = lint_ocsp(make_response(), ctx);
  EXPECT_TRUE(fires(findings, "e_ocsp_serial_mismatch"));
  // Mirrors the scanner's classification order (one Fig-5 class per probe):
  // an unmatched serial never reaches the signature check.
  EXPECT_FALSE(fires(findings, "e_ocsp_bad_signature"));
}

TEST(OcspLint, BadSignature) {
  util::Rng local(4242);
  const crypto::KeyPair rogue = crypto::KeyPair::generate_sim(local);
  Context ctx;
  ctx.issuer = &issuer_cert();
  ctx.requested_serial = kLeafSerial;
  const auto bad = make_response([](ocsp::OcspResponseBuilder&) {}, rogue);
  EXPECT_TRUE(fires(lint_ocsp(bad, ctx), "e_ocsp_bad_signature"));
  EXPECT_FALSE(fires(lint_ocsp(make_response(), ctx), "e_ocsp_bad_signature"));
}

TEST(OcspLint, NonceNotEchoed) {
  Context ctx;
  ctx.expected_nonce = Bytes{0x01, 0x02, 0x03};
  EXPECT_TRUE(fires(lint_ocsp(make_response(), ctx), "w_ocsp_nonce_not_echoed"));
  const auto echoed = make_response([](ocsp::OcspResponseBuilder& b) {
    b.nonce(Bytes{0x01, 0x02, 0x03});
  });
  EXPECT_FALSE(fires(lint_ocsp(echoed, ctx), "w_ocsp_nonce_not_echoed"));
}

TEST(OcspLint, MultiSerialAndSuperfluousCertsAreInfo) {
  const auto response = make_response([](ocsp::OcspResponseBuilder& b) {
    b.add_single(make_single(Bytes{0x99}));
    b.add_cert(issuer_cert());
    b.add_cert(make_clean_leaf());
  });
  const auto findings = lint_ocsp(response);
  EXPECT_TRUE(fires(findings, "i_ocsp_multi_serial"));
  EXPECT_TRUE(fires(findings, "i_ocsp_superfluous_certs"));
}

TEST(OcspLint, StaleAndPrematureNeedClock) {
  const auto response = make_response();
  EXPECT_FALSE(fires(lint_ocsp(response), "e_ocsp_stale"));
  Context late;
  late.now = kNow + Duration::days(30);
  EXPECT_TRUE(fires(lint_ocsp(response, late), "e_ocsp_stale"));
  Context early;
  early.now = kNow - Duration::days(30);
  EXPECT_TRUE(fires(lint_ocsp(response, early), "e_ocsp_premature"));
}

// -------------------------------------------------- CRL/OCSP cross-check --

std::vector<Finding> lint_pair(const ocsp::OcspResponse& response,
                               const crl::Crl& crl) {
  Context ctx;
  ctx.issuer = &issuer_cert();
  ctx.requested_serial = kLeafSerial;
  return lint(Artifact::crl_ocsp_pair("responder.example",
                                      response.encode_der(), crl, ctx));
}

crl::Crl make_revoking_crl(std::optional<crl::ReasonCode> reason =
                               crl::ReasonCode::kKeyCompromise) {
  return make_crl([&](crl::CrlBuilder& b) {
    b.add_entry({kLeafSerial, kNow - Duration::days(5), reason});
  });
}

TEST(CrossCheckLint, CrlRevokedButOcspSaysGood) {
  const auto findings = lint_pair(make_response(), make_revoking_crl());
  EXPECT_TRUE(fires(findings, "e_xcheck_crl_revoked_ocsp_good"));
  EXPECT_FALSE(fires(findings, "e_xcheck_crl_revoked_ocsp_unknown"));
}

TEST(CrossCheckLint, CrlRevokedButOcspSaysUnknown) {
  ocsp::OcspResponseBuilder builder;
  builder.produced_at(kNow - Duration::hours(1))
      .add_single(make_single(kLeafSerial, ocsp::CertStatus::kUnknown));
  const auto findings =
      lint_pair(builder.sign(ca_key()), make_revoking_crl());
  EXPECT_TRUE(fires(findings, "e_xcheck_crl_revoked_ocsp_unknown"));
  EXPECT_FALSE(fires(findings, "e_xcheck_crl_revoked_ocsp_good"));
}

TEST(CrossCheckLint, RevocationTimeAndReasonDisagreements) {
  ocsp::OcspResponseBuilder builder;
  auto single = make_single(kLeafSerial, ocsp::CertStatus::kRevoked);
  // Different time than the CRL's, and the reason dropped entirely — the
  // paper's dominant disagreement shape (§5.4).
  single.revoked =
      ocsp::RevokedInfo{kNow - Duration::days(4), std::nullopt};
  builder.produced_at(kNow - Duration::hours(1)).add_single(single);
  const auto findings =
      lint_pair(builder.sign(ca_key()), make_revoking_crl());
  EXPECT_TRUE(fires(findings, "w_xcheck_revocation_time_differs"));
  EXPECT_TRUE(fires(findings, "w_xcheck_reason_code_differs"));
  EXPECT_FALSE(fires(findings, "e_xcheck_crl_revoked_ocsp_good"));
}

TEST(CrossCheckLint, AgreementIsCleanOfCrossFindings) {
  ocsp::OcspResponseBuilder builder;
  auto single = make_single(kLeafSerial, ocsp::CertStatus::kRevoked);
  single.revoked = ocsp::RevokedInfo{kNow - Duration::days(5),
                                     crl::ReasonCode::kKeyCompromise};
  builder.produced_at(kNow - Duration::hours(1)).add_single(single);
  const auto findings =
      lint_pair(builder.sign(ca_key()), make_revoking_crl());
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.rule_id.find("xcheck") == std::string::npos) << f.rule_id;
  }
}

// ------------------------------------------------------------- report --

// Golden rendering: one synthetic finding per severity level, in add()
// order, against the exact serialized form consumers (CI, the study's
// artifact export) parse.
TEST(Report, GoldenJsonCoversEverySeverity) {
  LintReport report;
  report.add({Finding{"i_note", Severity::kInfo, "a1", "informational"},
              Finding{"w_warn", Severity::kWarn, "a1", "advisory"}});
  report.add({Finding{"e_err", Severity::kError, "a2", "violation"}});
  report.add({Finding{"f_fatal", Severity::kFatal, "a3", "unusable"}});
  report.add({});  // a clean artifact still counts
  EXPECT_EQ(
      report.render_json(),
      "{\"artifacts\":4,\"findings_total\":4,"
      "\"by_severity\":{\"info\":1,\"warn\":1,\"error\":1,\"fatal\":1},"
      "\"by_rule\":{\"e_err\":1,\"f_fatal\":1,\"i_note\":1,\"w_warn\":1},"
      "\"dropped\":0,\"findings\":["
      "{\"rule\":\"i_note\",\"severity\":\"info\",\"artifact\":\"a1\","
      "\"message\":\"informational\"},"
      "{\"rule\":\"w_warn\",\"severity\":\"warn\",\"artifact\":\"a1\","
      "\"message\":\"advisory\"},"
      "{\"rule\":\"e_err\",\"severity\":\"error\",\"artifact\":\"a2\","
      "\"message\":\"violation\"},"
      "{\"rule\":\"f_fatal\",\"severity\":\"fatal\",\"artifact\":\"a3\","
      "\"message\":\"unusable\"}]}");
  EXPECT_TRUE(report.has_fatal());
  EXPECT_EQ(report.count(Severity::kWarn), 1u);
  EXPECT_EQ(report.count("e_err"), 1u);
  EXPECT_EQ(report.summary(),
            "4 artifacts, 4 findings (1 info, 1 warn, 1 error, 1 fatal)");
}

TEST(Report, CapacityDropsFindingsButKeepsCountsExact) {
  LintReport report(2);
  report.add({Finding{"e_a", Severity::kError, "x", "m1"},
              Finding{"e_a", Severity::kError, "x", "m2"},
              Finding{"e_b", Severity::kError, "x", "m3"}});
  EXPECT_EQ(report.findings().size(), 2u);
  EXPECT_EQ(report.dropped(), 1u);
  EXPECT_EQ(report.total_findings(), 3u);
  EXPECT_EQ(report.count("e_a"), 2u);
  EXPECT_EQ(report.count("e_b"), 1u);
}

TEST(Report, MergeAddsCountsAndRespectsCapacity) {
  LintReport a(2);
  a.add({Finding{"e_a", Severity::kError, "x", "m"}});
  LintReport b;
  b.add({Finding{"w_b", Severity::kWarn, "y", "m"},
         Finding{"w_b", Severity::kWarn, "y", "m2"}});
  a.merge(b);
  EXPECT_EQ(a.artifacts(), 2u);
  EXPECT_EQ(a.total_findings(), 3u);
  EXPECT_EQ(a.findings().size(), 2u);  // capacity still enforced
  EXPECT_EQ(a.dropped(), 1u);
  EXPECT_EQ(a.count(Severity::kWarn), 2u);
}

TEST(Report, CsvListsEveryRegistryRule) {
  LintReport report;
  report.add({Finding{"e_cert_serial_zero", Severity::kError, "x", "m"}});
  const std::string csv = report.render_csv(RuleRegistry::builtin());
  EXPECT_NE(csv.find("rule,severity,citation,count"), std::string::npos);
  EXPECT_NE(csv.find("e_cert_serial_zero"), std::string::npos);
  // Rules with zero hits still appear (the catalog view).
  EXPECT_NE(csv.find("f_crl_unparseable"), std::string::npos);
}

// --------------------------------------------------------- run_batch --

TEST(RunBatch, BitIdenticalAcrossThreadCounts) {
  auto make_batch = [] {
    std::vector<Artifact> artifacts;
    for (int i = 0; i < 24; ++i) {
      switch (i % 4) {
        case 0:
          artifacts.push_back(Artifact::deferred(
              ArtifactKind::kCertificate, "cert:" + std::to_string(i),
              make_clean_leaf([&](x509::CertificateBuilder& b) {
                b.serial_number(static_cast<std::uint64_t>(i) + 1);
              }).encode_der()));
          break;
        case 1:
          artifacts.push_back(Artifact::deferred(
              ArtifactKind::kCrl, "crl:" + std::to_string(i),
              make_crl([](crl::CrlBuilder&) {}).encode_der()));
          break;
        case 2:
          artifacts.push_back(Artifact::deferred(
              ArtifactKind::kOcspResponse, "ocsp:" + std::to_string(i),
              make_response().encode_der()));
          break;
        default:
          artifacts.push_back(Artifact::deferred(ArtifactKind::kOcspResponse,
                                                 "junk:" + std::to_string(i),
                                                 Bytes{'x', 'y', 'z'}));
      }
    }
    return artifacts;
  };
  const RuleRegistry& registry = RuleRegistry::builtin();
  std::vector<Artifact> one = make_batch();
  std::vector<Artifact> four = make_batch();
  const LintReport single = run_batch(registry, one, 1);
  const LintReport quad = run_batch(registry, four, 4);
  EXPECT_GT(single.total_findings(), 0u);
  EXPECT_EQ(single.render_json(), quad.render_json());
}

}  // namespace
}  // namespace mustaple::lint
