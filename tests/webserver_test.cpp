// Web-server stapling model tests: the Table 3 behaviour matrix for Apache
// and Nginx, the Nginx 5-minute refresh floor, and the Ideal model's
// proactive refresh.
#include <gtest/gtest.h>

#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "webserver/webserver.hpp"

namespace mustaple::webserver {
namespace {

using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 6, 1);

struct World {
  util::Rng rng{555};
  net::EventLoop loop{kNow};
  net::Network network{loop, 555};
  ca::CertificateAuthority authority{"SrvCA", kNow - Duration::days(900), rng};
  x509::RootStore roots;
  std::unique_ptr<ca::OcspResponder> responder;
  tls::TlsDirectory directory;

  explicit World(ca::ResponderBehavior behavior = make_default_behavior()) {
    roots.add(authority.root_cert());
    responder = std::make_unique<ca::OcspResponder>(authority, behavior,
                                                    "ocsp.srv.example", rng);
    responder->install(network);
  }

  static ca::ResponderBehavior make_default_behavior() {
    ca::ResponderBehavior behavior;
    behavior.pre_generate = false;
    behavior.validity = Duration::days(7);
    behavior.this_update_margin = Duration::hours(1);
    return behavior;
  }

  std::unique_ptr<WebServer> make_server(Software software,
                                         const std::string& domain,
                                         Duration validity = Duration::days(7)) {
    (void)validity;
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = kNow - Duration::days(5);
    request.lifetime = Duration::days(90);
    request.must_staple = true;
    request.ocsp_urls = {"http://ocsp.srv.example/"};
    WebServerConfig config;
    config.software = software;
    auto server = std::make_unique<WebServer>(
        domain, authority.chain_for(authority.issue(request, rng)), config,
        network);
    server->install(directory);
    return server;
  }

  tls::HandshakeObservation connect(const std::string& domain, SimTime when,
                                    bool ask = true) {
    loop.run_until(when);
    tls::ClientHello hello;
    hello.server_name = domain;
    hello.status_request = ask;
    tls::ServerHello server_hello;
    return tls::observe_handshake(directory, hello, roots, when, server_hello);
  }
};

bool valid_staple(const tls::HandshakeObservation& obs) {
  return obs.staple_present && obs.staple_check && obs.staple_check->usable();
}

// ---------------------------------------------------------------- Apache --

TEST(Apache, FirstClientPausedButStapled) {
  World w;
  auto server = w.make_server(Software::kApache, "a.example");
  server->start(kNow);  // no-op for Apache
  EXPECT_EQ(server->fetch_count(), 0u);  // no prefetch (Table 3)
  const auto first = w.connect("a.example", kNow + Duration::minutes(1));
  EXPECT_TRUE(valid_staple(first));
  EXPECT_GT(first.handshake_delay_ms, 0.0);  // the pause
  EXPECT_EQ(server->fetch_count(), 1u);
}

TEST(Apache, SecondClientServedFromCache) {
  World w;
  auto server = w.make_server(Software::kApache, "a.example");
  w.connect("a.example", kNow + Duration::minutes(1));
  const auto second = w.connect("a.example", kNow + Duration::minutes(2));
  EXPECT_TRUE(valid_staple(second));
  EXPECT_EQ(second.handshake_delay_ms, 0.0);
  EXPECT_EQ(server->fetch_count(), 1u);
}

TEST(Apache, ServesExpiredStapleWithinCacheTtl) {
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.validity = Duration::minutes(20);
  behavior.this_update_margin = Duration::secs(0);
  World w(behavior);
  auto server = w.make_server(Software::kApache, "a.example");
  w.connect("a.example", kNow + Duration::minutes(1));
  // 40 minutes later: response expired (20 min validity) but Apache's 1h
  // cache TTL has not elapsed -> expired staple served (Bugzilla #62400).
  const auto obs = w.connect("a.example", kNow + Duration::minutes(41));
  ASSERT_TRUE(obs.staple_present);
  ASSERT_TRUE(obs.staple_check.has_value());
  EXPECT_EQ(obs.staple_check->outcome, ocsp::CheckOutcome::kExpired);
}

TEST(Apache, DeletesCacheAndStaplesErrorResponse) {
  World w;
  auto server = w.make_server(Software::kApache, "a.example");
  w.connect("a.example", kNow + Duration::minutes(1));
  w.responder->set_try_later(true);
  // Past the cache TTL, the refresh hits tryLater: Apache deletes the old
  // (still valid!) response and staples the error response itself.
  const auto obs = w.connect("a.example", kNow + Duration::hours(2));
  ASSERT_TRUE(obs.staple_present);
  ASSERT_TRUE(obs.staple_check.has_value());
  EXPECT_EQ(obs.staple_check->outcome, ocsp::CheckOutcome::kNotSuccessful);
  EXPECT_FALSE(server->has_cached_staple());
}

TEST(Apache, NoStapleWhenResponderUnreachable) {
  World w;
  auto server = w.make_server(Software::kApache, "a.example");
  w.connect("a.example", kNow + Duration::minutes(1));
  net::FaultRule outage;
  outage.canonical_host = "ocsp.srv.example";
  outage.mode = net::FaultMode::kTcpConnectFailure;
  w.network.faults().add(outage);
  const auto obs = w.connect("a.example", kNow + Duration::hours(2));
  EXPECT_FALSE(obs.staple_present);
  EXPECT_FALSE(server->has_cached_staple());  // old response deleted
}

// ----------------------------------------------------------------- Nginx --

TEST(Nginx, FirstClientGetsNoStaple) {
  World w;
  auto server = w.make_server(Software::kNginx, "n.example");
  server->start(kNow);
  const auto first = w.connect("n.example", kNow + Duration::minutes(1));
  EXPECT_FALSE(first.staple_present);  // Table 3: "provides no response"
  EXPECT_EQ(first.handshake_delay_ms, 0.0);
  // The background fetch completed, so client #2 is served.
  const auto second = w.connect("n.example", kNow + Duration::minutes(2));
  EXPECT_TRUE(valid_staple(second));
}

TEST(Nginx, RespectsNextUpdate) {
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.validity = Duration::minutes(20);
  behavior.this_update_margin = Duration::secs(0);
  World w(behavior);
  auto server = w.make_server(Software::kNginx, "n.example");
  w.connect("n.example", kNow + Duration::minutes(1));
  w.connect("n.example", kNow + Duration::minutes(2));
  // 40 minutes later the cached response is expired; the refresh floor has
  // long passed, so Nginx refetches and serves a FRESH staple.
  const auto obs = w.connect("n.example", kNow + Duration::minutes(41));
  ASSERT_TRUE(obs.staple_present);
  EXPECT_TRUE(obs.staple_check->usable());
}

TEST(Nginx, RefreshFloorLeaksExpiredStaple) {
  // Footnote 28: with a validity under 5 minutes, clients can receive an
  // expired cached response.
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.validity = Duration::minutes(2);
  behavior.this_update_margin = Duration::secs(0);
  World w(behavior);
  auto server = w.make_server(Software::kNginx, "n.example");
  w.connect("n.example", kNow + Duration::secs(10));   // triggers fetch
  w.connect("n.example", kNow + Duration::secs(20));   // served fresh
  // 3 minutes later: expired, but within the 5-minute refresh floor.
  const auto obs = w.connect("n.example", kNow + Duration::minutes(3));
  ASSERT_TRUE(obs.staple_present);
  EXPECT_EQ(obs.staple_check->outcome, ocsp::CheckOutcome::kExpired);
}

TEST(Nginx, RetainsValidStapleOnResponderError) {
  World w;
  auto server = w.make_server(Software::kNginx, "n.example");
  w.connect("n.example", kNow + Duration::minutes(1));
  w.connect("n.example", kNow + Duration::minutes(2));
  w.responder->set_try_later(true);
  // Hours later the cached response (7-day validity) is still valid; Nginx
  // keeps serving it (Table 3: retain on error).
  const auto obs = w.connect("n.example", kNow + Duration::hours(6));
  EXPECT_TRUE(valid_staple(obs));
}

// ----------------------------------------------------------------- Ideal --

TEST(Ideal, PrefetchesBeforeFirstClient) {
  World w;
  auto server = w.make_server(Software::kIdeal, "i.example");
  server->start(kNow);
  EXPECT_EQ(server->fetch_count(), 1u);
  const auto first = w.connect("i.example", kNow + Duration::minutes(1));
  EXPECT_TRUE(valid_staple(first));
  EXPECT_EQ(first.handshake_delay_ms, 0.0);
}

TEST(Ideal, RefreshesProactively) {
  World w;
  auto server = w.make_server(Software::kIdeal, "i.example");
  server->start(kNow);
  const std::size_t initial = server->fetch_count();
  // Halfway through the 7-day validity a refresh fires on the event loop.
  w.loop.run_until(kNow + Duration::days(4));
  EXPECT_GT(server->fetch_count(), initial);
  const auto obs = w.connect("i.example", kNow + Duration::days(4));
  EXPECT_TRUE(valid_staple(obs));
}

TEST(Ideal, NeverServesExpiredStaple) {
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.validity = Duration::hours(2);
  behavior.this_update_margin = Duration::secs(0);
  World w(behavior);
  auto server = w.make_server(Software::kIdeal, "i.example");
  server->start(kNow);
  // Kill the responder; once the staple expires, Ideal withholds rather
  // than serving stale data.
  net::FaultRule outage;
  outage.canonical_host = "ocsp.srv.example";
  outage.mode = net::FaultMode::kTcpConnectFailure;
  outage.window_start = kNow + Duration::minutes(10);
  w.network.faults().add(outage);
  const auto valid_phase = w.connect("i.example", kNow + Duration::hours(1));
  EXPECT_TRUE(valid_staple(valid_phase));
  const auto expired_phase = w.connect("i.example", kNow + Duration::hours(5));
  EXPECT_FALSE(expired_phase.staple_present);
}

// ---------------------------------------------------------------- common --

TEST(WebServer, StaplingDisabledServesNothing) {
  World w;
  ca::LeafRequest request;
  request.domain = "off.example";
  request.not_before = kNow - Duration::days(1);
  request.lifetime = Duration::days(90);
  request.ocsp_urls = {"http://ocsp.srv.example/"};
  WebServerConfig config;
  config.software = Software::kApache;
  config.stapling_enabled = false;  // SSLUseStapling off
  WebServer server("off.example",
                   w.authority.chain_for(w.authority.issue(request, w.rng)),
                   config, w.network);
  server.install(w.directory);
  const auto obs = w.connect("off.example", kNow + Duration::minutes(1));
  EXPECT_TRUE(obs.connected);
  EXPECT_FALSE(obs.staple_present);
  EXPECT_EQ(server.fetch_count(), 0u);
}

TEST(WebServer, EmptyChainRejected) {
  World w;
  EXPECT_THROW(WebServer("x.example", {}, WebServerConfig{}, w.network),
               std::invalid_argument);
}

TEST(WebServer, SoftwareNames) {
  EXPECT_STREQ(to_string(Software::kApache), "apache");
  EXPECT_STREQ(to_string(Software::kNginx), "nginx");
  EXPECT_STREQ(to_string(Software::kIdeal), "ideal");
}

// ----------------------------------------------- ssl_stapling_verify knob --

TEST(StapleVerify, DefaultOffStaplesGarbage) {
  // With verification off (the real-world default), a responder serving
  // bad-signature responses gets its garbage stapled straight to clients.
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.bad_signature = true;
  World w(behavior);
  ca::LeafRequest request;
  request.domain = "v.example";
  request.not_before = kNow - Duration::days(5);
  request.lifetime = Duration::days(90);
  request.must_staple = true;
  request.ocsp_urls = {"http://ocsp.srv.example/"};
  WebServerConfig config;
  config.software = Software::kIdeal;
  config.verify_staple = false;
  WebServer server("v.example",
                   w.authority.chain_for(w.authority.issue(request, w.rng)),
                   config, w.network);
  server.install(w.directory);
  server.start(kNow);
  const auto obs = w.connect("v.example", kNow + Duration::minutes(5));
  ASSERT_TRUE(obs.staple_present);  // garbage got stapled...
  ASSERT_TRUE(obs.staple_check.has_value());
  EXPECT_EQ(obs.staple_check->outcome, ocsp::CheckOutcome::kBadSignature);
}

TEST(StapleVerify, OnRefusesToCacheGarbage) {
  ca::ResponderBehavior behavior = World::make_default_behavior();
  behavior.bad_signature = true;
  World w(behavior);
  ca::LeafRequest request;
  request.domain = "v2.example";
  request.not_before = kNow - Duration::days(5);
  request.lifetime = Duration::days(90);
  request.must_staple = true;
  request.ocsp_urls = {"http://ocsp.srv.example/"};
  WebServerConfig config;
  config.software = Software::kIdeal;
  config.verify_staple = true;
  WebServer server("v2.example",
                   w.authority.chain_for(w.authority.issue(request, w.rng)),
                   config, w.network);
  server.install(w.directory);
  server.start(kNow);
  const auto obs = w.connect("v2.example", kNow + Duration::minutes(5));
  EXPECT_FALSE(obs.staple_present);  // verified and rejected
  EXPECT_FALSE(server.has_cached_staple());
}

TEST(StapleVerify, OnStillCachesGoodResponses) {
  World w;
  ca::LeafRequest request;
  request.domain = "v3.example";
  request.not_before = kNow - Duration::days(5);
  request.lifetime = Duration::days(90);
  request.ocsp_urls = {"http://ocsp.srv.example/"};
  WebServerConfig config;
  config.software = Software::kIdeal;
  config.verify_staple = true;
  WebServer server("v3.example",
                   w.authority.chain_for(w.authority.issue(request, w.rng)),
                   config, w.network);
  server.install(w.directory);
  server.start(kNow);
  const auto obs = w.connect("v3.example", kNow + Duration::minutes(5));
  EXPECT_TRUE(valid_staple(obs));
}

}  // namespace
}  // namespace mustaple::webserver
