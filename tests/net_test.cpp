// Network-simulator tests: URLs, HTTP wire format, DNS (incl. CNAME
// chains), the event loop, fault rules, and end-to-end request routing with
// injected failures (the §5.2 failure taxonomy).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "net/dns.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/http.hpp"
#include "net/network.hpp"
#include "net/url.hpp"
#include "net/vantage.hpp"
#include "obs/obs.hpp"

namespace mustaple::net {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kStart = util::make_time(2018, 4, 25);

// ------------------------------------------------------------------- URL --

TEST(Url, ParsesPlainHttp) {
  auto url = parse_url("http://ocsp.example.com/");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().scheme, "http");
  EXPECT_EQ(url.value().host, "ocsp.example.com");
  EXPECT_EQ(url.value().port, 80);
  EXPECT_EQ(url.value().path, "/");
}

TEST(Url, ParsesHttpsDefaultPort) {
  auto url = parse_url("https://secure.example/status");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().port, 443);
  EXPECT_EQ(url.value().path, "/status");
}

TEST(Url, ParsesExplicitPort) {
  // The paper's http://ocsp.pki.wayport.net:2560 case.
  auto url = parse_url("http://ocsp.pki.wayport.net:2560");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().port, 2560);
  EXPECT_EQ(url.value().path, "/");
}

TEST(Url, LowercasesHost) {
  auto url = parse_url("http://OCSP.Example.COM/X");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "ocsp.example.com");
  EXPECT_EQ(url.value().path, "/X");  // path case preserved
}

TEST(Url, ToStringOmitsDefaultPorts) {
  EXPECT_EQ(parse_url("http://h/x").value().to_string(), "http://h/x");
  EXPECT_EQ(parse_url("http://h:8080/x").value().to_string(),
            "http://h:8080/x");
}

TEST(Url, RejectsMalformed) {
  EXPECT_FALSE(parse_url("ftp://x/").ok());
  EXPECT_FALSE(parse_url("http://").ok());
  EXPECT_FALSE(parse_url("http://host:abc/").ok());
  EXPECT_FALSE(parse_url("http://host:99999/").ok());
  EXPECT_FALSE(parse_url("http://host:/").ok());
  EXPECT_FALSE(parse_url("no-scheme.example").ok());
}

TEST(Url, RejectsPortZero) {
  // Port 0 is "pick one for me" at the sockets API — it never identifies a
  // remote service, so a URL carrying it is malformed, not default-port.
  const auto url = parse_url("http://host:0/");
  ASSERT_FALSE(url.ok());
  EXPECT_EQ(url.error().code, "url.bad_port");
  EXPECT_FALSE(parse_url("http://host:0").ok());
  EXPECT_FALSE(parse_url("https://host:00/x").ok());
}

// ------------------------------------------------------------------ HTTP --

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/ocsp";
  req.headers.set("Host", "ocsp.example");
  req.headers.set("Content-Type", "application/ocsp-request");
  req.body = {0x30, 0x03, 0x0a, 0x01, 0x00};
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().method, "POST");
  EXPECT_EQ(parsed.value().path, "/ocsp");
  EXPECT_EQ(parsed.value().host(), "ocsp.example");
  EXPECT_EQ(parsed.value().headers.get("content-type"),
            "application/ocsp-request");
  EXPECT_EQ(parsed.value().body, req.body);
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::make(404, "Not Found",
                                         util::bytes_of("nope"), "text/plain");
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status_code, 404);
  EXPECT_EQ(parsed.value().reason, "Not Found");
  EXPECT_EQ(util::text_of(parsed.value().body), "nope");
  EXPECT_FALSE(parsed.value().ok());
}

TEST(Http, HeadersCaseInsensitive) {
  HeaderMap headers;
  headers.set("Content-Length", "5");
  EXPECT_TRUE(headers.contains("content-length"));
  EXPECT_TRUE(headers.contains("CONTENT-LENGTH"));
  EXPECT_EQ(headers.get("Content-length"), "5");
  EXPECT_EQ(headers.get("missing"), "");
}

TEST(Http, ParseRejectsMalformed) {
  EXPECT_FALSE(HttpRequest::parse(util::bytes_of("garbage")).ok());
  EXPECT_FALSE(HttpRequest::parse(util::bytes_of("GET /\r\n\r\n")).ok());
  EXPECT_FALSE(
      HttpResponse::parse(util::bytes_of("NOTHTTP 200 OK\r\n\r\n")).ok());
  EXPECT_FALSE(
      HttpResponse::parse(util::bytes_of("HTTP/1.1 abc OK\r\n\r\n")).ok());
}

TEST(Http, ConflictingDuplicateContentLengthIsRejected) {
  // RFC 7230 §3.3.2: multiple differing Content-Length values are a
  // request-smuggling vector; the parse must refuse to pick one.
  const auto conflicting = HttpRequest::parse(util::bytes_of(
      "POST / HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 4\r\nContent-Length: 5\r\n\r\nabcde"));
  ASSERT_FALSE(conflicting.ok());
  EXPECT_EQ(conflicting.error().code, "http.duplicate_content_length");
}

TEST(Http, IdenticalRepeatedContentLengthIsTolerated) {
  // Same value repeated is unambiguous; RFC 7230 lets a parser accept it.
  const auto repeated = HttpRequest::parse(util::bytes_of(
      "POST / HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 4\r\nContent-Length: 4\r\n\r\nabcd"));
  ASSERT_TRUE(repeated.ok()) << repeated.error().to_string();
  EXPECT_EQ(util::text_of(repeated.value().body), "abcd");
}

TEST(Http, BinaryBodySurvives) {
  HttpResponse resp;
  resp.body.resize(256);
  for (int i = 0; i < 256; ++i) resp.body[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().body, resp.body);
}

// ------------------------------------------------------------------- DNS --

TEST(Dns, ResolveARecord) {
  DnsZone zone;
  zone.add_a("host.example", 42);
  auto addr = zone.resolve("host.example");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value(), 42u);
  EXPECT_TRUE(zone.has_name("HOST.example"));
}

TEST(Dns, NxDomain) {
  DnsZone zone;
  auto result = zone.resolve("nowhere.example");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "dns.nxdomain");
}

TEST(Dns, CnameChainFollowed) {
  DnsZone zone;
  zone.add_a("target.example", 7);
  zone.add_cname("alias1.example", "alias2.example");
  zone.add_cname("alias2.example", "target.example");
  auto addr = zone.resolve("alias1.example");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value(), 7u);
  EXPECT_EQ(zone.canonical_name("alias1.example"), "target.example");
  EXPECT_EQ(zone.canonical_name("target.example"), "target.example");
}

TEST(Dns, CnameLoopDetected) {
  DnsZone zone;
  zone.add_cname("a.example", "b.example");
  zone.add_cname("b.example", "a.example");
  auto result = zone.resolve("a.example");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "dns.cname_loop");
}

// ------------------------------------------------------------ event loop --

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop(kStart);
  std::vector<int> order;
  loop.schedule_at(kStart + Duration::secs(30), [&] { order.push_back(2); });
  loop.schedule_at(kStart + Duration::secs(10), [&] { order.push_back(1); });
  loop.schedule_at(kStart + Duration::secs(50), [&] { order.push_back(3); });
  loop.run_until(kStart + Duration::secs(40));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), kStart + Duration::secs(40));
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), kStart + Duration::secs(50));
}

TEST(EventLoop, FifoForSameTime) {
  EventLoop loop(kStart);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(kStart + Duration::secs(10), [&order, i] {
      order.push_back(i);
    });
  }
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CallbackMaySchedule) {
  EventLoop loop(kStart);
  int fired = 0;
  loop.schedule_after(Duration::secs(1), [&] {
    ++fired;
    loop.schedule_after(Duration::secs(1), [&] { ++fired; });
  });
  loop.run_until(kStart + Duration::secs(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop(kStart);
  loop.run_until(kStart + Duration::secs(100));
  bool fired = false;
  loop.schedule_at(kStart, [&] { fired = true; });  // in the past
  loop.run_until(kStart + Duration::secs(101));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, FifoTieBreakAndLifetimeCounters) {
  EventLoop loop(kStart);
  EXPECT_EQ(loop.events_dispatched(), 0u);
  EXPECT_EQ(loop.max_pending(), 0u);

  // Same-time events interleaved with an earlier one: dispatch order must be
  // time-major, then FIFO by scheduling order within the tie.
  std::vector<int> order;
  loop.schedule_at(kStart + Duration::secs(10), [&] { order.push_back(1); });
  loop.schedule_at(kStart + Duration::secs(5), [&] { order.push_back(0); });
  loop.schedule_at(kStart + Duration::secs(10), [&] { order.push_back(2); });
  loop.schedule_at(kStart + Duration::secs(10), [&] { order.push_back(3); });
  EXPECT_EQ(loop.max_pending(), 4u);  // high-water mark before any dispatch

  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.events_dispatched(), 4u);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.max_pending(), 4u);  // unchanged by draining

  // Counters keep accumulating over the loop's lifetime.
  loop.schedule_after(Duration::secs(1), [] {});
  loop.run_all();
  EXPECT_EQ(loop.events_dispatched(), 5u);
  EXPECT_EQ(loop.max_pending(), 4u);
}

#if MUSTAPLE_OBS_ENABLED

// ----------------------------------------------- trace-context propagation --

TEST(EventLoopTrace, ContextCapturedAtScheduleRestoredAtDispatch) {
  EventLoop loop(kStart);
  obs::TraceContext seen;
  {
    obs::TraceScope scope(obs::TraceContext{11, 3});
    loop.schedule_after(Duration::secs(1),
                        [&] { seen = obs::current_trace(); });
  }
  // Schedule-time context is gone by dispatch time; the captured one rules.
  EXPECT_FALSE(obs::current_trace().active());
  loop.run_all();
  EXPECT_EQ(seen.trace_id, 11u);
  EXPECT_EQ(seen.probe_id, 3u);
  // The dispatch scope is popped again after the callback.
  EXPECT_FALSE(obs::current_trace().active());
}

TEST(EventLoopTrace, NestedScheduleChainsKeepTheirIdentity) {
  EventLoop loop(kStart);
  std::vector<std::uint64_t> hops;
  {
    obs::TraceScope scope(obs::TraceContext{21, 1});
    // A three-hop chain: each callback schedules the next; all hops must
    // observe the originating context even though the originating scope died
    // long before the later hops run.
    loop.schedule_after(Duration::secs(1), [&] {
      hops.push_back(obs::current_trace().trace_id);
      loop.schedule_after(Duration::secs(1), [&] {
        hops.push_back(obs::current_trace().trace_id);
        loop.schedule_after(Duration::secs(1), [&] {
          hops.push_back(obs::current_trace().trace_id);
        });
      });
    });
  }
  loop.run_all();
  EXPECT_EQ(hops, (std::vector<std::uint64_t>{21, 21, 21}));
}

TEST(EventLoopTrace, SameTimeEventsKeepDistinctContextsInFifoOrder) {
  EventLoop loop(kStart);
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    obs::TraceScope scope(obs::TraceContext{i, 0});
    loop.schedule_at(kStart + Duration::secs(10),
                     [&] { seen.push_back(obs::current_trace().trace_id); });
  }
  loop.run_all();
  // FIFO tie-break preserved, and no context bleeds into its neighbour.
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(EventLoopTrace, ContextRestoredAfterCallbackSchedulesFurtherEvents) {
  EventLoop loop(kStart);
  std::vector<std::uint64_t> seen;
  {
    obs::TraceScope scope(obs::TraceContext{31, 0});
    loop.schedule_after(Duration::secs(1), [&] {
      // Scheduling under a DIFFERENT inner context must not disturb the
      // outer events already queued with their own capture.
      obs::TraceScope inner(obs::TraceContext{32, 0});
      loop.schedule_after(Duration::secs(5),
                          [&] { seen.push_back(obs::current_trace().trace_id); });
    });
    loop.schedule_after(Duration::secs(2),
                        [&] { seen.push_back(obs::current_trace().trace_id); });
  }
  loop.run_all();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{31, 32}));
}

TEST(EventLoopTrace, UntracedScheduleDispatchesInactive) {
  EventLoop loop(kStart);
  bool active = true;
  loop.schedule_after(Duration::secs(1),
                      [&] { active = obs::current_trace().active(); });
  loop.run_all();
  EXPECT_FALSE(active);
}

#endif  // MUSTAPLE_OBS_ENABLED

// ---------------------------------------------------------------- faults --

TEST(FaultRule, WindowAndRegionScoping) {
  FaultRule rule;
  rule.canonical_host = "x.example";
  rule.mode = FaultMode::kTcpConnectFailure;
  rule.regions = {Region::kSeoul};
  rule.window_start = kStart + Duration::hours(1);
  rule.window_end = kStart + Duration::hours(3);

  EXPECT_FALSE(rule.applies("x.example", Region::kSeoul, kStart));
  EXPECT_TRUE(rule.applies("x.example", Region::kSeoul,
                           kStart + Duration::hours(2)));
  EXPECT_FALSE(rule.applies("x.example", Region::kParis,
                            kStart + Duration::hours(2)));
  EXPECT_FALSE(rule.applies("x.example", Region::kSeoul,
                            kStart + Duration::hours(3)));  // end exclusive
  EXPECT_FALSE(rule.applies("y.example", Region::kSeoul,
                            kStart + Duration::hours(2)));
}

TEST(FaultRule, OpenEndedAndGlobal) {
  FaultRule rule;
  rule.canonical_host = "dead.example";
  rule.mode = FaultMode::kDnsNxDomain;
  for (Region region : all_regions()) {
    EXPECT_TRUE(rule.applies("dead.example", region, kStart));
    EXPECT_TRUE(rule.applies("dead.example", region,
                             kStart + Duration::days(1000)));
  }
}

TEST(FaultPlan, FirstMatchWins) {
  FaultPlan plan;
  FaultRule first;
  first.canonical_host = "h.example";
  first.mode = FaultMode::kHttp404;
  plan.add(first);
  FaultRule second;
  second.canonical_host = "h.example";
  second.mode = FaultMode::kHttp500;
  plan.add(second);
  auto mode = plan.check("h.example", Region::kParis, kStart);
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(*mode, FaultMode::kHttp404);
  EXPECT_FALSE(plan.check("other.example", Region::kParis, kStart).has_value());
}

// --------------------------------------------------------------- network --

TEST(TransportErrorNames, ToStringRoundTrips) {
  for (TransportError error :
       {TransportError::kNone, TransportError::kDnsFailure,
        TransportError::kTcpFailure, TransportError::kTlsCertInvalid}) {
    const char* text = to_string(error);
    EXPECT_STRNE(text, "?");
    auto parsed = transport_error_from_string(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, error);
  }
  EXPECT_FALSE(transport_error_from_string("bogus").has_value());
  EXPECT_FALSE(transport_error_from_string("").has_value());
}

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : loop_(kStart), network_(loop_, 99) {
    network_.register_service(
        "svc.example", 80,
        [](const HttpRequest& request, SimTime, Region) {
          HttpResponse resp = HttpResponse::make(
              200, "OK", util::bytes_of("echo:" + request.path), "text/plain");
          return resp;
        });
  }

  Url url(const std::string& text) { return parse_url(text).value(); }

  EventLoop loop_;
  Network network_;
};

TEST_F(NetworkFixture, SuccessfulRoundTrip) {
  auto result = network_.http_get(Region::kVirginia, url("http://svc.example/abc"));
  EXPECT_EQ(result.error, TransportError::kNone);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(util::text_of(result.response.body), "echo:/abc");
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST_F(NetworkFixture, UnknownHostIsDnsFailure) {
  auto result = network_.http_get(Region::kVirginia, url("http://ghost.example/"));
  EXPECT_EQ(result.error, TransportError::kDnsFailure);
  EXPECT_FALSE(result.success());
}

TEST_F(NetworkFixture, RegisteredNameWrongPortIsTcpFailure) {
  auto result =
      network_.http_get(Region::kVirginia, url("http://svc.example:8080/"));
  EXPECT_EQ(result.error, TransportError::kTcpFailure);
}

TEST_F(NetworkFixture, InjectedHttpErrorsComeBackAsResponses) {
  for (auto [mode, code] :
       std::vector<std::pair<FaultMode, int>>{{FaultMode::kHttp404, 404},
                                              {FaultMode::kHttp500, 500},
                                              {FaultMode::kHttp503, 503}}) {
    FaultPlan& faults = network_.faults();
    FaultRule rule;
    rule.canonical_host = "svc.example";
    rule.mode = mode;
    rule.window_start = loop_.now();
    rule.window_end = loop_.now() + Duration::secs(1);
    faults.add(rule);
    auto result = network_.http_get(Region::kParis, url("http://svc.example/"));
    EXPECT_EQ(result.error, TransportError::kNone);
    EXPECT_EQ(result.response.status_code, code);
    EXPECT_FALSE(result.success());
    loop_.run_until(loop_.now() + Duration::secs(2));  // expire the rule
  }
}

TEST_F(NetworkFixture, InjectedDnsAndTcpFailures) {
  FaultRule dns;
  dns.canonical_host = "svc.example";
  dns.mode = FaultMode::kDnsNxDomain;
  dns.regions = {Region::kSeoul};
  network_.faults().add(dns);
  EXPECT_EQ(network_.http_get(Region::kSeoul, url("http://svc.example/")).error,
            TransportError::kDnsFailure);
  // Other regions are unaffected (the regional-persistent-failure pattern).
  EXPECT_TRUE(
      network_.http_get(Region::kOregon, url("http://svc.example/")).success());
}

TEST_F(NetworkFixture, TlsCertFaultOnlyAffectsHttps) {
  network_.register_service("secure.example", 443,
                            [](const HttpRequest&, SimTime, Region) {
                              return HttpResponse::make(200, "OK", {}, "");
                            });
  network_.register_service("secure.example", 80,
                            [](const HttpRequest&, SimTime, Region) {
                              return HttpResponse::make(200, "OK", {}, "");
                            });
  FaultRule rule;
  rule.canonical_host = "secure.example";
  rule.mode = FaultMode::kTlsCertInvalid;
  network_.faults().add(rule);
  EXPECT_EQ(
      network_.http_get(Region::kParis, url("https://secure.example/")).error,
      TransportError::kTlsCertInvalid);
  EXPECT_TRUE(
      network_.http_get(Region::kParis, url("http://secure.example/")).success());
}

TEST_F(NetworkFixture, CnameAliasSharesFaults) {
  // The Comodo pattern: an outage keyed on the canonical name takes down
  // every alias.
  network_.dns().add_cname("alias.example", "svc.example");
  FaultRule rule;
  rule.canonical_host = "svc.example";
  rule.mode = FaultMode::kTcpConnectFailure;
  network_.faults().add(rule);
  EXPECT_EQ(
      network_.http_get(Region::kParis, url("http://alias.example/")).error,
      TransportError::kTcpFailure);
}

#if MUSTAPLE_OBS_ENABLED
TEST_F(NetworkFixture, FaultKindsLandInTaxonomyCounters) {
  // Every §5.2 fault mode must increment exactly one error-kind cell of
  // mustaple_net_fetch_errors_total (dns/tcp/tls/http) and the fetch total.
  network_.register_service("secure.example", 443,
                            [](const HttpRequest&, SimTime, Region) {
                              return HttpResponse::make(200, "OK", {}, "");
                            });
  const std::vector<std::pair<FaultMode, const char*>> cases = {
      {FaultMode::kDnsNxDomain, "dns"},   {FaultMode::kTcpConnectFailure, "tcp"},
      {FaultMode::kTlsCertInvalid, "tls"}, {FaultMode::kHttp404, "http"},
      {FaultMode::kHttp500, "http"},       {FaultMode::kHttp503, "http"}};
  const std::vector<const char*> kinds = {"dns", "tcp", "tls", "http"};
  obs::Registry& registry = obs::default_registry();

  for (const auto& [mode, expected_kind] : cases) {
    const std::string host =
        mode == FaultMode::kTlsCertInvalid ? "secure.example" : "svc.example";
    const std::string target = (mode == FaultMode::kTlsCertInvalid
                                    ? "https://" : "http://") + host + "/";
    FaultRule rule;
    rule.canonical_host = host;
    rule.mode = mode;
    rule.window_start = loop_.now();
    rule.window_end = loop_.now() + Duration::secs(1);
    network_.faults().add(rule);

    std::map<std::string, std::uint64_t> before;
    for (const char* kind : kinds) {
      before[kind] = registry.counter_value("mustaple_net_fetch_errors_total",
                                            {{"kind", kind}});
    }
    const std::uint64_t total_before =
        registry.counter_value("mustaple_net_fetch_total");

    auto result = network_.http_get(Region::kVirginia, url(target));
    EXPECT_FALSE(result.success());

    EXPECT_EQ(registry.counter_value("mustaple_net_fetch_total"),
              total_before + 1);
    for (const char* kind : kinds) {
      const std::uint64_t expected =
          before[kind] + (std::string(kind) == expected_kind ? 1 : 0);
      EXPECT_EQ(registry.counter_value("mustaple_net_fetch_errors_total",
                                       {{"kind", kind}}),
                expected)
          << "fault " << to_string(mode) << " kind " << kind;
    }
    loop_.run_until(loop_.now() + Duration::secs(2));  // expire the rule
  }
}

TEST_F(NetworkFixture, CleanFetchCountsNoErrorKind) {
  obs::Registry& registry = obs::default_registry();
  const std::uint64_t total_before =
      registry.counter_value("mustaple_net_fetch_total");
  std::uint64_t errors_before = 0;
  for (const char* kind : {"dns", "tcp", "tls", "http"}) {
    errors_before += registry.counter_value("mustaple_net_fetch_errors_total",
                                            {{"kind", kind}});
  }
  EXPECT_TRUE(
      network_.http_get(Region::kVirginia, url("http://svc.example/")).success());
  EXPECT_EQ(registry.counter_value("mustaple_net_fetch_total"),
            total_before + 1);
  std::uint64_t errors_after = 0;
  for (const char* kind : {"dns", "tcp", "tls", "http"}) {
    errors_after += registry.counter_value("mustaple_net_fetch_errors_total",
                                           {{"kind", kind}});
  }
  EXPECT_EQ(errors_after, errors_before);
}
#endif  // MUSTAPLE_OBS_ENABLED

TEST_F(NetworkFixture, CnameAliasRoutesToService) {
  network_.dns().add_cname("alias2.example", "svc.example");
  auto result =
      network_.http_get(Region::kParis, url("http://alias2.example/x"));
  EXPECT_TRUE(result.success());
  EXPECT_EQ(util::text_of(result.response.body), "echo:/x");
}

TEST_F(NetworkFixture, LatencyDependsOnDistance) {
  network_.set_host_region("svc.example", Region::kVirginia);
  double near_total = 0;
  double far_total = 0;
  for (int i = 0; i < 30; ++i) {
    near_total +=
        network_.http_get(Region::kVirginia, url("http://svc.example/")).latency_ms;
    far_total +=
        network_.http_get(Region::kSydney, url("http://svc.example/")).latency_ms;
  }
  EXPECT_LT(near_total, far_total);
}

TEST(Vantage, RttMatrixSymmetricAndPositive) {
  for (Region a : all_regions()) {
    for (Region b : all_regions()) {
      EXPECT_GT(base_rtt_ms(a, b), 0.0);
      EXPECT_DOUBLE_EQ(base_rtt_ms(a, b), base_rtt_ms(b, a));
    }
    EXPECT_STRNE(to_string(a), "?");
  }
}

// ------------------------------------------- HTTP response hardening --

TEST(Http, ParseRejectsEmptyStatusCodeToken) {
  // "HTTP/1.1  OK" (two spaces) yields an empty code token; the old parser
  // folded it to status 0, which success() treated as a non-HTTP-error
  // transport result.
  auto parsed = HttpResponse::parse(util::bytes_of("HTTP/1.1  OK\r\n\r\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.bad_status_code");
  // Missing code entirely (status line is just the version + space).
  EXPECT_FALSE(HttpResponse::parse(util::bytes_of("HTTP/1.1 \r\n\r\n")).ok());
}

TEST(Http, ParseRejectsOversizedStatusCode) {
  auto parsed =
      HttpResponse::parse(util::bytes_of("HTTP/1.1 2000 OK\r\n\r\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.bad_status_code");
  // Three digits stay accepted.
  EXPECT_TRUE(
      HttpResponse::parse(util::bytes_of("HTTP/1.1 599 Weird\r\n\r\n")).ok());
}

TEST(Http, ParseRejectsContentLengthMismatch) {
  auto parsed = HttpResponse::parse(util::bytes_of(
      "HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.content_length_mismatch");
}

TEST(Http, ParseRejectsNonNumericContentLength) {
  EXPECT_FALSE(HttpResponse::parse(util::bytes_of(
                   "HTTP/1.1 200 OK\r\ncontent-length: ten\r\n\r\n"))
                   .ok());
  EXPECT_FALSE(HttpResponse::parse(util::bytes_of(
                   "HTTP/1.1 200 OK\r\ncontent-length: \r\n\r\n"))
                   .ok());
  EXPECT_FALSE(
      HttpResponse::parse(
          util::bytes_of("HTTP/1.1 200 OK\r\ncontent-length: "
                         "99999999999999999999999999\r\n\r\n"))
          .ok());
}

TEST(Http, ParseAcceptsMatchingContentLength) {
  auto parsed = HttpResponse::parse(util::bytes_of(
      "HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nabc"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(util::text_of(parsed.value().body), "abc");
}

// ------------------------------------------- deterministic addressing --

TEST(Dns, HasAddressSeesARecords) {
  DnsZone dns;
  EXPECT_FALSE(dns.has_address(42));
  dns.add_a("a.example", 42);
  EXPECT_TRUE(dns.has_address(42));
  EXPECT_FALSE(dns.has_address(43));
}

TEST(NetworkAddressing, AutoAssignedAddressesComeFromFnvNotStdHash) {
  EventLoop loop(kStart);
  Network network(loop, 1);
  auto handler = [](const HttpRequest&, SimTime, Region) {
    return HttpResponse::make(200, "OK", {}, "");
  };
  network.register_service("ocsp.example.com", 80, handler);
  const Address expected = static_cast<Address>(
      util::fnv1a64(std::string_view("ocsp.example.com")) & 0xffffffffu);
  EXPECT_EQ(network.dns().resolve("ocsp.example.com").value(), expected);
}

TEST(NetworkAddressing, CollidingAutoAssignmentIsProbedPastNotShared) {
  EventLoop loop(kStart);
  Network network(loop, 1);
  auto handler = [](const HttpRequest&, SimTime, Region) {
    return HttpResponse::make(200, "OK", {}, "");
  };
  // Occupy the address host2 would hash to, then register host2: it must
  // land elsewhere instead of silently sharing (sharing is modelled
  // explicitly via dns().add_a, never by accident).
  const Address collided = static_cast<Address>(
      util::fnv1a64(std::string_view("b.example")) & 0xffffffffu);
  network.dns().add_a("squatter.example", collided);
  network.register_service("b.example", 80, handler);
  const Address assigned = network.dns().resolve("b.example").value();
  EXPECT_NE(assigned, collided);
  // The probe sequence is deterministic: the first LCG step.
  EXPECT_EQ(assigned, collided * 1664525u + 1013904223u);
}

// ---------------------------------------- counter-based latency model --

TEST(LatencySampling, PureFunctionOfKey) {
  const SimTime when{1'524'614'400};
  const double a = sample_probe_latency_ms(7, Region::kVirginia,
                                           Region::kParis, when, 3);
  const double b = sample_probe_latency_ms(7, Region::kVirginia,
                                           Region::kParis, when, 3);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 1.0);
}

TEST(LatencySampling, EveryKeyFieldMatters) {
  const SimTime when{1'524'614'400};
  const double base = sample_probe_latency_ms(7, Region::kVirginia,
                                              Region::kParis, when, 3);
  EXPECT_NE(base, sample_probe_latency_ms(8, Region::kVirginia,
                                          Region::kParis, when, 3));
  EXPECT_NE(base, sample_probe_latency_ms(7, Region::kSeoul, Region::kParis,
                                          when, 3));
  EXPECT_NE(base, sample_probe_latency_ms(7, Region::kVirginia,
                                          Region::kParis,
                                          when + Duration::hours(1), 3));
  EXPECT_NE(base, sample_probe_latency_ms(7, Region::kVirginia,
                                          Region::kParis, when, 4));
}

TEST(LatencySampling, RegressionGolden) {
  // Pins the sampling scheme: any change to the key mixing or the Rng
  // alters campaign outputs everywhere, so it must be deliberate.
  const SimTime when{1'524'614'400};  // 2018-04-25 00:00:00 UTC
  const double a = sample_probe_latency_ms(2018, Region::kVirginia,
                                           Region::kVirginia, when, 1);
  const double b = sample_probe_latency_ms(2018, Region::kSaoPaulo,
                                           Region::kVirginia, when, 1);
  EXPECT_DOUBLE_EQ(a, sample_probe_latency_ms(2018, Region::kVirginia,
                                              Region::kVirginia, when, 1));
  EXPECT_DOUBLE_EQ(b, sample_probe_latency_ms(2018, Region::kSaoPaulo,
                                              Region::kVirginia, when, 1));
  // Distance shapes the mean: 2 RTT with 15% jitter keeps Sao Paulo ->
  // Virginia well above the intra-region sample.
  EXPECT_GT(b, a);
  const double rtt_near = base_rtt_ms(Region::kVirginia, Region::kVirginia);
  const double rtt_far = base_rtt_ms(Region::kSaoPaulo, Region::kVirginia);
  EXPECT_NEAR(a, 2.0 * rtt_near, rtt_near);
  EXPECT_NEAR(b, 2.0 * rtt_far, rtt_far);
}

TEST_F(NetworkFixture, ProbeRequestMatchesOrdinalAndIsConst) {
  HttpRequest request;
  request.method = "GET";
  const Network& const_network = network_;
  auto a = const_network.http_request_probe(Region::kVirginia,
                                            url("http://svc.example/x"),
                                            request, 17);
  auto b = const_network.http_request_probe(Region::kVirginia,
                                            url("http://svc.example/x"),
                                            request, 17);
  EXPECT_TRUE(a.success());
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  auto c = const_network.http_request_probe(Region::kVirginia,
                                            url("http://svc.example/x"),
                                            request, 18);
  EXPECT_NE(a.latency_ms, c.latency_ms);
}

}  // namespace
}  // namespace mustaple::net
