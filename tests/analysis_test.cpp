// The §6/§7 conformance suites end-to-end: Table 2 and Table 3 must come
// out exactly as the paper measured them, and the ablations must show the
// security consequences the paper argues for.
#include <gtest/gtest.h>

#include <fstream>

#include "analysis/browser_suite.hpp"
#include "analysis/export.hpp"
#include "analysis/webserver_suite.hpp"

namespace mustaple::analysis {
namespace {

// ---------------------------------------------------------- browser suite --

struct BrowserSuiteFixture : public ::testing::Test {
  static const BrowserSuiteResult& result() {
    static const BrowserSuiteResult r = run_browser_suite(2018);
    return r;
  }
};

TEST_F(BrowserSuiteFixture, AllBrowsersRequestStaples) {
  // Table 2 row 1: every browser sends the Certificate Status Request.
  EXPECT_EQ(result().count_requesting(), result().rows.size());
}

TEST_F(BrowserSuiteFixture, OnlyFourFirefoxesRespectMustStaple) {
  // Table 2 row 2.
  EXPECT_EQ(result().count_respecting(), 4u);
  for (const auto& row : result().rows) {
    const bool is_respecting_firefox =
        (row.profile.name == "Firefox 60") ||
        (row.profile.name == "Firefox" && row.profile.os == "Android");
    EXPECT_EQ(row.respected_must_staple, is_respecting_firefox)
        << row.profile.display_name();
  }
}

TEST_F(BrowserSuiteFixture, NobodySendsOwnOcspRequest) {
  // Table 2 row 3.
  EXPECT_EQ(result().count_own_ocsp(), 0u);
}

TEST_F(BrowserSuiteFixture, NonRespectingBrowsersSoftFail) {
  for (const auto& row : result().rows) {
    if (row.respected_must_staple) {
      EXPECT_EQ(row.verdict_without_staple, browser::Verdict::kHardFail);
    } else {
      EXPECT_EQ(row.verdict_without_staple, browser::Verdict::kAcceptSoftFail)
          << row.profile.display_name();
    }
  }
}

TEST_F(BrowserSuiteFixture, StapleStrippingAttackMatrix) {
  // The §2.3 attack: a REVOKED Must-Staple certificate behind an attacker
  // stripping staples and blocking OCSP succeeds against every browser
  // except the Must-Staple-respecting Firefoxes.
  EXPECT_EQ(result().count_attack_succeeds(), result().rows.size() - 4);
  for (const auto& row : result().rows) {
    if (row.respected_must_staple) {
      EXPECT_EQ(row.verdict_revoked_attacked, browser::Verdict::kHardFail)
          << row.profile.display_name();
    } else {
      EXPECT_EQ(row.verdict_revoked_attacked,
                browser::Verdict::kAcceptSoftFail)
          << row.profile.display_name();
    }
  }
}

// -------------------------------------------------------- webserver suite --

struct WebServerSuiteFixture : public ::testing::Test {
  static const WebServerSuiteResult& result() {
    static const WebServerSuiteResult r = run_webserver_suite(2018);
    return r;
  }

  static const WebServerRow& row(webserver::Software software) {
    for (const auto& r : result().rows) {
      if (r.software == software) return r;
    }
    throw std::logic_error("row missing");
  }
};

TEST_F(WebServerSuiteFixture, Table3ApacheRow) {
  const WebServerRow& apache = row(webserver::Software::kApache);
  EXPECT_FALSE(apache.prefetches);
  EXPECT_EQ(apache.first_client_note, "pauses connection");
  EXPECT_GT(apache.first_client_delay_ms, 0.0);
  EXPECT_TRUE(apache.caches);
  EXPECT_FALSE(apache.respects_next_update);
  EXPECT_FALSE(apache.retains_on_error);
  EXPECT_TRUE(apache.serves_error_response);
}

TEST_F(WebServerSuiteFixture, Table3NginxRow) {
  const WebServerRow& nginx = row(webserver::Software::kNginx);
  EXPECT_FALSE(nginx.prefetches);
  EXPECT_EQ(nginx.first_client_note, "provides no response");
  EXPECT_TRUE(nginx.caches);
  EXPECT_TRUE(nginx.respects_next_update);
  EXPECT_TRUE(nginx.retains_on_error);
  EXPECT_FALSE(nginx.serves_error_response);
}

TEST_F(WebServerSuiteFixture, IdealRowFullyCorrect) {
  const WebServerRow& ideal = row(webserver::Software::kIdeal);
  EXPECT_TRUE(ideal.prefetches);
  EXPECT_TRUE(ideal.caches);
  EXPECT_TRUE(ideal.respects_next_update);
  EXPECT_TRUE(ideal.retains_on_error);
  EXPECT_FALSE(ideal.serves_error_response);
}

TEST_F(WebServerSuiteFixture, OutageAblationOrdering) {
  // Client-visible staple availability under a responder outage must order
  // Apache < Nginx <= Ideal — the paper's argument that correct caching
  // plus prefetch rides out most outages.
  double apache = -1;
  double nginx = -1;
  double ideal = -1;
  for (const auto& [software, availability] : result().outage_availability) {
    switch (software) {
      case webserver::Software::kApache:
        apache = availability;
        break;
      case webserver::Software::kNginx:
        nginx = availability;
        break;
      case webserver::Software::kIdeal:
        ideal = availability;
        break;
    }
  }
  ASSERT_GE(apache, 0.0);
  EXPECT_LT(apache, nginx);
  EXPECT_LE(nginx, ideal + 1e-9);
  EXPECT_GT(ideal, 0.4);  // rides out ~half the 24h outage on 12h validity
}

// ------------------------------------------------------------ csv export --

TEST(CsvExport, SeriesAlignedByX) {
  util::Series a;
  a.label = "alpha";
  a.add(1, 10);
  a.add(2, 20);
  util::Series b;
  b.label = "beta,quoted";
  b.add(2, 200);
  b.add(3, 300);
  const std::string csv = csv_from_series({a, b}, "t");
  EXPECT_EQ(csv,
            "t,alpha,\"beta,quoted\"\n"
            "1,10,\n"
            "2,20,200\n"
            "3,,300\n");
}

TEST(CsvExport, CdfRows) {
  util::Cdf cdf;
  cdf.add(1.0);
  cdf.add(3.0);
  cdf.add_infinite();
  const std::string csv = csv_from_cdf(cdf);
  EXPECT_NE(csv.find("value,cdf\n"), std::string::npos);
  EXPECT_NE(csv.find("1,0.3333333333\n"), std::string::npos);
  EXPECT_NE(csv.find("# infinite_mass,0.3333333333"), std::string::npos);
}

TEST(CsvExport, TableQuoting) {
  const std::string csv = csv_from_table(
      {"name", "note"}, {{"plain", "a,b"}, {"with\"quote", "x"}});
  EXPECT_EQ(csv,
            "name,note\n"
            "plain,\"a,b\"\n"
            "\"with\"\"quote\",x\n");
}

TEST(CsvExport, EmptyDirectoryIsNoOp) {
  EXPECT_TRUE(write_export("", "anything.csv", "data"));
}

TEST(CsvExport, WritesFile) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_export(dir, "mustaple_test_export.csv", "a,b\n1,2\n"));
  std::ifstream in(dir + "/mustaple_test_export.csv");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
}

}  // namespace
}  // namespace mustaple::analysis
