// Ecosystem-generation invariants, scaled-down scanner runs, the
// consistency audit, and the end-to-end MustStapleStudy façade.
#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/adoption.hpp"
#include "analysis/browser_suite.hpp"
#include "analysis/webserver_suite.hpp"
#include "core/study.hpp"
#include "measurement/alexa_scan.hpp"
#include "measurement/consistency.hpp"
#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "obs/timeline.hpp"

namespace mustaple::measurement {
namespace {

using util::Duration;

EcosystemConfig small_config() {
  EcosystemConfig config;
  config.seed = 7;
  config.responder_count = 130;
  config.alexa_domains = 20000;
  config.certs_per_responder = 2;
  // One-week campaign keeps scanner tests fast.
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 5, 2);
  return config;
}

struct EcosystemFixture : public ::testing::Test {
  EcosystemConfig config = small_config();
  net::EventLoop loop{config.campaign_start - Duration::days(1)};
  Ecosystem ecosystem{config, loop};
};

// ------------------------------------------------------------- ecosystem --

TEST_F(EcosystemFixture, ResponderCountAtLeastConfigured) {
  EXPECT_GE(ecosystem.responders().size(), config.responder_count);
}

TEST_F(EcosystemFixture, DomainsGenerated) {
  EXPECT_EQ(ecosystem.domains().size(), config.alexa_domains);
}

TEST_F(EcosystemFixture, DomainFlagsAreConsistent) {
  for (const auto& meta : ecosystem.domains()) {
    if (!meta.https) {
      EXPECT_FALSE(meta.ocsp);
      EXPECT_FALSE(meta.staples);
    }
    if (meta.ocsp) {
      EXPECT_TRUE(meta.https);
      ASSERT_LT(meta.responder, ecosystem.responders().size());
    }
    if (meta.staples || meta.must_staple) {
      EXPECT_TRUE(meta.ocsp);
    }
  }
}

TEST_F(EcosystemFixture, AdoptionRatesInPaperRange) {
  const auto stats = ecosystem.deployment_stats();
  const double https_rate = static_cast<double>(stats.alexa_https) /
                            static_cast<double>(config.alexa_domains);
  EXPECT_GT(https_rate, 0.65);
  EXPECT_LT(https_rate, 0.82);
  const double ocsp_rate = static_cast<double>(stats.alexa_ocsp) /
                           static_cast<double>(stats.alexa_https);
  EXPECT_GT(ocsp_rate, 0.85);  // paper: 91.3% average
  EXPECT_LT(ocsp_rate, 0.97);
}

TEST_F(EcosystemFixture, MustStapleIsRareAndMostlyLetsEncrypt) {
  const auto stats = ecosystem.deployment_stats();
  // 0.01% of 20k domains is ~2; allow for noise but demand rarity.
  EXPECT_LT(stats.must_staple_certs, 20u);
  EXPECT_GE(stats.must_staple_lets_encrypt * 10,
            stats.must_staple_certs * 5);  // >= 50% LE even in tiny samples
}

TEST_F(EcosystemFixture, ComodoAliasesShareCanonicalName) {
  const auto& dns = ecosystem.network().dns();
  EXPECT_EQ(dns.canonical_name("ocsp2.comodoca.com"), "ocsp.comodoca.com");
  EXPECT_EQ(dns.canonical_name("ocsp.comodoca2.com"), "ocsp.comodoca.com");
}

TEST_F(EcosystemFixture, RootStoreCoversAllCas) {
  EXPECT_EQ(ecosystem.roots().size(), ecosystem.authority_count());
}

TEST_F(EcosystemFixture, ScanTargetsHaveValidCerts) {
  ASSERT_FALSE(ecosystem.scan_targets().empty());
  for (const auto& target : ecosystem.scan_targets()) {
    EXPECT_TRUE(target.cert.extensions().supports_ocsp());
    EXPECT_TRUE(target.cert.validity().contains(config.campaign_end));
    ASSERT_LT(target.responder_index, ecosystem.responders().size());
  }
}

TEST_F(EcosystemFixture, DeterministicAcrossConstructions) {
  net::EventLoop loop2(config.campaign_start - Duration::days(1));
  Ecosystem other(config, loop2);
  ASSERT_EQ(other.domains().size(), ecosystem.domains().size());
  for (std::size_t i = 0; i < other.domains().size(); i += 97) {
    EXPECT_EQ(other.domains()[i].rank, ecosystem.domains()[i].rank);
    EXPECT_EQ(other.domains()[i].https, ecosystem.domains()[i].https);
    EXPECT_EQ(other.domains()[i].responder, ecosystem.domains()[i].responder);
  }
  ASSERT_EQ(other.scan_targets().size(), ecosystem.scan_targets().size());
  EXPECT_EQ(other.scan_targets()[0].cert.serial_hex(),
            ecosystem.scan_targets()[0].cert.serial_hex());
}

// --------------------------------------------------------------- scanner --

struct ScannerFixture : public EcosystemFixture {
  ScanConfig scan_config() {
    ScanConfig scan;
    scan.interval = Duration::hours(12);
    return scan;
  }
};

TEST_F(ScannerFixture, CampaignProducesSteps) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  EXPECT_EQ(scanner.steps().size(), 14u);  // 7 days / 12h
  EXPECT_THROW(scanner.run(), std::logic_error);  // idempotence guard
}

TEST_F(ScannerFixture, MaxStepsCapsTheCampaign) {
  ScanConfig scan = scan_config();
  scan.max_steps = 3;
  HourlyScanner scanner(ecosystem, scan);
  scanner.run();
  EXPECT_EQ(scanner.steps().size(), 3u);
}

TEST_F(ScannerFixture, AvailabilityOnlyModeSkipsValidation) {
  ScanConfig scan = scan_config();
  scan.validate_responses = false;
  HourlyScanner scanner(ecosystem, scan);
  scanner.run();
  // Availability numbers still flow...
  std::size_t successes = 0;
  for (const auto& step : scanner.steps()) {
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      successes += step.successes[g];
    }
  }
  EXPECT_GT(successes, 0u);
  // ...but no quality/validation accounting happens.
  std::size_t quality_samples = 0;
  for (std::size_t r = 0; r < scanner.responder_count(); ++r) {
    for (net::Region region : net::all_regions()) {
      quality_samples += scanner.stats(r, region).validity_samples;
    }
  }
  EXPECT_EQ(quality_samples, 0u);
  for (const auto& step : scanner.steps()) {
    EXPECT_EQ(step.unparseable, 0u);
  }
}

TEST_F(ScannerFixture, MostRequestsSucceed) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  for (net::Region region : net::all_regions()) {
    const double failure = scanner.failure_rate(region);
    EXPECT_GT(failure, 0.0) << net::to_string(region);
    EXPECT_LT(failure, 0.20) << net::to_string(region);
  }
}

TEST_F(ScannerFixture, ComodoOutageVisibleOnlyInAffectedRegions) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  // The Apr 25 19:00-21:00 outage affects Oregon/Sydney/Seoul; the first
  // scan step lands at 00:00 Apr 25, the second at 12:00, neither inside
  // the window... the window is only visible to a step landing inside it.
  // Instead check per-responder stats: the Comodo canonical responder must
  // show zero failures from Virginia and (given the scan cadence misses the
  // 2h window) any failures only in the affected regions.
  std::size_t comodo = SIZE_MAX;
  for (std::size_t i = 0; i < ecosystem.responders().size(); ++i) {
    if (ecosystem.responders()[i].host == "ocsp.comodoca.com") comodo = i;
  }
  ASSERT_NE(comodo, SIZE_MAX);
  const auto& virginia = scanner.stats(comodo, net::Region::kVirginia);
  EXPECT_EQ(virginia.requests, virginia.http_successes);
}

TEST_F(ScannerFixture, NeverReachableRespondersDetected) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  // The two IdenTrust analogues are dead from everywhere.
  EXPECT_GE(scanner.responders_never_reachable(), 2u);
}

TEST_F(ScannerFixture, RegionPersistentFailuresDetected) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  // 16 DNS + 4 TCP + 8 HTTP + 1 TLS pinned per-region failures (some may
  // overlap with transient outages, so just demand a healthy count).
  EXPECT_GE(scanner.responders_region_persistent_fail(), 10u);
}

TEST_F(ScannerFixture, FailureTaxonomyMatchesPaperShape) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  const auto taxonomy = scanner.persistent_failure_taxonomy();
  // §5.2: DNS failures dominate (16 of 29), then HTTP (8), TCP (4+2
  // never-reachable IdenTrust analogues), one TLS-certificate case.
  EXPECT_GE(taxonomy.dns, 8u);
  EXPECT_GE(taxonomy.tcp, 2u);
  EXPECT_GE(taxonomy.http, 4u);
  EXPECT_GE(taxonomy.tls, 1u);
  EXPECT_GT(taxonomy.dns, taxonomy.tls);
}

TEST_F(ScannerFixture, QualityCdfsPopulated) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  const auto certs = scanner.cdf_certs(net::Region::kVirginia);
  const auto serials = scanner.cdf_serials(net::Region::kVirginia);
  const auto validity = scanner.cdf_validity(net::Region::kVirginia);
  const auto margin = scanner.cdf_margin(net::Region::kVirginia);
  EXPECT_GT(certs.count(), 50u);
  EXPECT_GT(serials.count(), 50u);
  EXPECT_GT(validity.count(), 50u);
  EXPECT_GT(margin.count(), 50u);
  // Fig 7 shape: the vast majority of responders send exactly one serial.
  EXPECT_GT(serials.fraction_at_most(1.0), 0.85);
  // Fig 8 shape: some responders have blank (infinite) validity.
  EXPECT_GT(validity.infinite_fraction(), 0.02);
  // Fig 6 shape: most responders send <= 1 certificate.
  EXPECT_GT(certs.fraction_at_most(1.0), 0.70);
}

TEST_F(ScannerFixture, MarginCdfShowsZeroMarginMass) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  const auto margin = scanner.cdf_margin(net::Region::kParis);
  // Fig 9: a visible mass of responders with ~zero thisUpdate margin, and
  // a small negative (future thisUpdate) tail.
  EXPECT_GT(margin.fraction_at_most(1.0), 0.08);
  EXPECT_GT(margin.fraction_at_most(-1.0), 0.005);
}

TEST_F(ScannerFixture, PreGenerationDetected) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  const std::size_t pre = scanner.responders_pre_generated();
  const std::size_t total = scanner.responder_count();
  // §5.4: 51.7% pre-generate. Allow a generous band at this scale.
  EXPECT_GT(pre, total / 4);
  EXPECT_LT(pre, total * 3 / 4);
}

TEST_F(ScannerFixture, Fig5BucketsAppear) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  std::size_t unparseable = 0;
  std::size_t responses = 0;
  for (const auto& step : scanner.steps()) {
    unparseable += step.unparseable;
    responses += step.responses_200;
  }
  ASSERT_GT(responses, 0u);
  // Persistent malformed responders guarantee a nonzero unparseable rate,
  // but it stays a small fraction (Fig 5 peaks ~3%).
  EXPECT_GT(unparseable, 0u);
  EXPECT_LT(static_cast<double>(unparseable) / static_cast<double>(responses),
            0.10);
}

TEST_F(ScannerFixture, DomainImpactAccounted) {
  HourlyScanner scanner(ecosystem, scan_config());
  scanner.run();
  // Sao Paulo has persistent failures (digitalcertvalidation 404s et al.),
  // so its domains-unable series is nonzero at every step.
  bool any = false;
  for (const auto& step : scanner.steps()) {
    if (step.domains_unable[static_cast<std::size_t>(
            net::Region::kSaoPaulo)] > 0) {
      any = true;
    }
  }
  EXPECT_TRUE(any);
}

// ---------------------------------------- deterministic parallel scans --

// Everything a campaign can emit, extracted into plain values so two runs
// can be compared field by field with exact (bit-identical) equality.
struct CampaignSummary {
  std::vector<StepTotals> steps;
  std::vector<ResponderRegionStats> stats;
  std::size_t with_outage = 0;
  std::size_t never_reachable = 0;
  std::size_t region_persistent = 0;
  HourlyScanner::FailureTaxonomy taxonomy;
  std::size_t pre_generated = 0;
  std::size_t non_overlapping = 0;
  std::array<double, net::kRegionCount> failure_rates{};
  std::vector<double> validity_cdf;
  std::vector<double> margin_cdf;
  std::string timeline_csv;
  std::string lint_json;
  // Sharded-cache introspection (conservation sanity, not output equality:
  // the hit/miss split is the one legitimately scheduling-dependent number).
  util::ShardedCacheStats validation_totals;
  std::vector<util::ShardedCacheStats> validation_shards;
  util::ShardedCacheStats lint_totals;
  std::vector<util::ShardedCacheStats> lint_shards;
};

CampaignSummary run_campaign(std::size_t threads) {
  EcosystemConfig config = small_config();
  net::EventLoop loop(config.campaign_start - Duration::days(1));
  Ecosystem ecosystem(config, loop);
  ScanConfig scan;
  scan.interval = Duration::hours(12);
  scan.max_steps = 6;
  scan.threads = threads;
  HourlyScanner scanner(ecosystem, scan);

  obs::Timeline timeline(config.campaign_start, scan.interval);
  obs::Timeline* previous = obs::install_timeline(&timeline);
  scanner.run();
  timeline.flush(loop.now());
  obs::install_timeline(previous);

  CampaignSummary summary;
  summary.steps = scanner.steps();
  for (std::size_t r = 0; r < scanner.responder_count(); ++r) {
    for (net::Region region : net::all_regions()) {
      summary.stats.push_back(scanner.stats(r, region));
    }
  }
  summary.with_outage = scanner.responders_with_outage();
  summary.never_reachable = scanner.responders_never_reachable();
  summary.region_persistent = scanner.responders_region_persistent_fail();
  summary.taxonomy = scanner.persistent_failure_taxonomy();
  summary.pre_generated = scanner.responders_pre_generated();
  summary.non_overlapping = scanner.responders_non_overlapping();
  for (net::Region region : net::all_regions()) {
    summary.failure_rates[static_cast<std::size_t>(region)] =
        scanner.failure_rate(region);
  }
  summary.validity_cdf =
      scanner.cdf_validity(net::Region::kVirginia).sorted_finite();
  summary.margin_cdf =
      scanner.cdf_margin(net::Region::kSaoPaulo).sorted_finite();
  summary.timeline_csv = timeline.render_csv();
  summary.lint_json = scanner.lint_report().render_json();
  summary.validation_totals = scanner.validation_cache_stats();
  for (std::size_t s = 0; s < scanner.validation_cache_shards(); ++s) {
    summary.validation_shards.push_back(scanner.validation_cache_shard_stats(s));
  }
  summary.lint_totals = scanner.lint_cache_stats();
  for (std::size_t s = 0; s < scanner.lint_cache_shards(); ++s) {
    summary.lint_shards.push_back(scanner.lint_cache_shard_stats(s));
  }
  return summary;
}

// Conservation laws that hold at EVERY thread count: hits + misses account
// for every lookup, per shard and in aggregate, and the aggregate is exactly
// the sum over shards. (The hit/miss split itself may differ between runs —
// two workers can both miss the same key before either inserts — which is
// why it is checked for conservation here rather than equality above.)
void expect_cache_conservation(const util::ShardedCacheStats& totals,
                               const std::vector<util::ShardedCacheStats>& shards) {
  util::ShardedCacheStats sum;
  for (const auto& s : shards) {
    EXPECT_EQ(s.hits + s.misses, s.lookups);
    sum.lookups += s.lookups;
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.insertions += s.insertions;
    sum.collisions += s.collisions;
    sum.clears += s.clears;
    sum.size += s.size;
  }
  EXPECT_EQ(totals.hits + totals.misses, totals.lookups);
  EXPECT_EQ(sum.lookups, totals.lookups);
  EXPECT_EQ(sum.hits, totals.hits);
  EXPECT_EQ(sum.misses, totals.misses);
  EXPECT_EQ(sum.insertions, totals.insertions);
  EXPECT_EQ(sum.collisions, totals.collisions);
  EXPECT_EQ(sum.clears, totals.clears);
  EXPECT_EQ(sum.size, totals.size);
}

void expect_online_stats_identical(const util::OnlineStats& a,
                                   const util::OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  // EXPECT_EQ, not NEAR: float accumulation replays in canonical order, so
  // the sums must be bit-identical, not merely close.
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_campaigns_identical(const CampaignSummary& one,
                                const CampaignSummary& four) {
  ASSERT_EQ(one.steps.size(), four.steps.size());
  for (std::size_t s = 0; s < one.steps.size(); ++s) {
    const StepTotals& a = one.steps[s];
    const StepTotals& b = four.steps[s];
    EXPECT_EQ(a.when, b.when);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.domains_unable, b.domains_unable);
    EXPECT_EQ(a.responses_200, b.responses_200);
    EXPECT_EQ(a.unparseable, b.unparseable);
    EXPECT_EQ(a.serial_mismatch, b.serial_mismatch);
    EXPECT_EQ(a.bad_signature, b.bad_signature);
  }

  ASSERT_EQ(one.stats.size(), four.stats.size());
  for (std::size_t i = 0; i < one.stats.size(); ++i) {
    const ResponderRegionStats& a = one.stats[i];
    const ResponderRegionStats& b = four.stats[i];
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.http_successes, b.http_successes);
    EXPECT_EQ(a.usable_responses, b.usable_responses);
    EXPECT_EQ(a.dns_failures, b.dns_failures);
    EXPECT_EQ(a.tcp_failures, b.tcp_failures);
    EXPECT_EQ(a.http_errors, b.http_errors);
    EXPECT_EQ(a.tls_failures, b.tls_failures);
    expect_online_stats_identical(a.certs_per_response, b.certs_per_response);
    expect_online_stats_identical(a.serials_per_response,
                                  b.serials_per_response);
    expect_online_stats_identical(a.validity_seconds, b.validity_seconds);
    expect_online_stats_identical(a.margin_seconds, b.margin_seconds);
    expect_online_stats_identical(a.produced_at_deltas, b.produced_at_deltas);
    EXPECT_EQ(a.blank_next_update, b.blank_next_update);
    EXPECT_EQ(a.validity_samples, b.validity_samples);
    EXPECT_EQ(a.future_this_update, b.future_this_update);
    EXPECT_EQ(a.expired_next_update, b.expired_next_update);
    EXPECT_EQ(a.last_produced_at, b.last_produced_at);
    EXPECT_EQ(a.last_observed_at, b.last_observed_at);
    EXPECT_EQ(a.produced_regressions, b.produced_regressions);
    EXPECT_EQ(a.cached_observations, b.cached_observations);
  }

  EXPECT_EQ(one.with_outage, four.with_outage);
  EXPECT_EQ(one.never_reachable, four.never_reachable);
  EXPECT_EQ(one.region_persistent, four.region_persistent);
  EXPECT_EQ(one.taxonomy.dns, four.taxonomy.dns);
  EXPECT_EQ(one.taxonomy.tcp, four.taxonomy.tcp);
  EXPECT_EQ(one.taxonomy.http, four.taxonomy.http);
  EXPECT_EQ(one.taxonomy.tls, four.taxonomy.tls);
  EXPECT_EQ(one.pre_generated, four.pre_generated);
  EXPECT_EQ(one.non_overlapping, four.non_overlapping);
  for (std::size_t g = 0; g < net::kRegionCount; ++g) {
    EXPECT_EQ(one.failure_rates[g], four.failure_rates[g]);
  }
  EXPECT_EQ(one.validity_cdf, four.validity_cdf);
  EXPECT_EQ(one.margin_cdf, four.margin_cdf);
  // The observability plane is part of the contract too: identical metric
  // deltas in every timeline window, rendered to the same CSV bytes.
  EXPECT_EQ(one.timeline_csv, four.timeline_csv);
  // Inline lint findings accumulate in canonical probe order, so the whole
  // report (counts AND retained finding order) must also be bit-identical.
  EXPECT_EQ(one.lint_json, four.lint_json);
}

TEST(ScannerThreading, FourThreadsBitIdenticalToOneThread) {
  expect_campaigns_identical(run_campaign(1), run_campaign(4));
}

TEST(ScannerThreading, OneTwoFourThreadsBitIdentical) {
  const CampaignSummary one = run_campaign(1);
  const CampaignSummary two = run_campaign(2);
  const CampaignSummary four = run_campaign(4);
  expect_campaigns_identical(one, two);
  expect_campaigns_identical(one, four);
  expect_campaigns_identical(two, four);
  for (const CampaignSummary* run : {&one, &two, &four}) {
    expect_cache_conservation(run->validation_totals, run->validation_shards);
    expect_cache_conservation(run->lint_totals, run->lint_shards);
    // Lookup COUNTS are deterministic (one lookup per validated probe /
    // per linted body) even though the hit/miss split is not.
    EXPECT_EQ(run->validation_totals.lookups, one.validation_totals.lookups);
    EXPECT_EQ(run->lint_totals.lookups, one.lint_totals.lookups);
  }
}

TEST(ScannerThreading, ExplicitThreadCountBeatsEnvironment) {
  // threads=0 means auto (env var); an explicit count must win over it.
  const char* saved = std::getenv("MUSTAPLE_SCAN_THREADS");
  const std::string restore = saved ? saved : "";
  ::setenv("MUSTAPLE_SCAN_THREADS", "2", 1);
  EcosystemConfig config = small_config();
  config.responder_count = 10;
  config.alexa_domains = 500;
  net::EventLoop loop(config.campaign_start - Duration::days(1));
  Ecosystem ecosystem(config, loop);
  ScanConfig scan;
  scan.interval = Duration::hours(12);
  scan.max_steps = 1;
  scan.threads = 1;
  HourlyScanner scanner(ecosystem, scan);
  scanner.run();  // would deadlock or misbehave only if env leaked through
  if (saved) {
    ::setenv("MUSTAPLE_SCAN_THREADS", restore.c_str(), 1);
  } else {
    ::unsetenv("MUSTAPLE_SCAN_THREADS");
  }
  EXPECT_EQ(scanner.steps().size(), 1u);
}

// ------------------------------------------------------------- alexa scan --

TEST_F(EcosystemFixture, AlexaOneShotScan) {
  AlexaScanConfig scan;
  scan.scan_time = util::make_time(2018, 4, 26);
  const AlexaScanResult result = run_alexa_scan(ecosystem, scan);
  EXPECT_GT(result.domains_probed, 10000u);
  EXPECT_GE(result.responders_touched, 100u);
  // The Sao Paulo digitalcertvalidation 404s and the regional persistent
  // pins guarantee nonzero unreachable counts somewhere.
  std::size_t total_unreachable = 0;
  for (std::size_t g = 0; g < net::kRegionCount; ++g) {
    total_unreachable += result.domains_unreachable[g];
  }
  EXPECT_GT(total_unreachable, 0u);
  // The IdenTrust analogues are dark from everywhere; they carry few (but
  // >= 0) domains, so just check the invariant holds.
  EXPECT_LE(result.domains_dark_everywhere, result.domains_probed);
}

TEST_F(EcosystemFixture, AlexaScanStrideReducesAttribution) {
  AlexaScanConfig full;
  const AlexaScanResult all = run_alexa_scan(ecosystem, full);
  AlexaScanConfig strided;
  strided.domain_stride = 10;
  const AlexaScanResult sampled = run_alexa_scan(ecosystem, strided);
  EXPECT_LT(sampled.domains_probed, all.domains_probed / 5);
  EXPECT_GT(sampled.domains_probed, 0u);
}

// ------------------------------------------------------------ consistency --

TEST_F(EcosystemFixture, ConsistencyAuditFindsTable1Shape) {
  ConsistencyConfig config;
  config.revoked_population = 1500;
  util::Rng rng(99);
  ConsistencyAudit audit(ecosystem, config);
  const ConsistencyReport report = audit.run(rng);

  EXPECT_GE(report.probed, config.revoked_population);
  EXPECT_GT(report.responses_collected, report.probed * 9 / 10);  // ~99.9%
  EXPECT_GT(report.crls_downloaded, 10u);

  // Table 1: rows exist; GlobalSign/Firmaprofesional analogues answer
  // Unknown for ALL their revoked certs, others leak a few Good answers.
  EXPECT_GE(report.table1.size(), 5u);
  bool saw_all_unknown = false;
  bool saw_good_leak = false;
  for (const auto& row : report.table1) {
    if (row.answered_unknown > 0 && row.answered_revoked == 0) {
      saw_all_unknown = true;
    }
    if (row.answered_good > 0 && row.answered_revoked > 0) {
      saw_good_leak = true;
    }
  }
  EXPECT_TRUE(saw_all_unknown);
  EXPECT_TRUE(saw_good_leak);

  // Fig 10: few differing revocation times; some negative; tail long.
  EXPECT_GT(report.time_differing, 0u);
  EXPECT_LT(report.time_differing, report.time_compared / 5);
  EXPECT_GT(report.max_positive_delta_seconds, 7 * 3600.0);

  // Reason codes: ~15% differ, and the differing ones are CRL-only.
  ASSERT_GT(report.reason_compared, 0u);
  const double reason_rate = static_cast<double>(report.reason_differing) /
                             static_cast<double>(report.reason_compared);
  EXPECT_GT(reason_rate, 0.08);
  EXPECT_LT(reason_rate, 0.25);
  EXPECT_EQ(report.reason_crl_only, report.reason_differing);
}

// ---------------------------------------------------------------- adoption --

TEST_F(EcosystemFixture, AdoptionByRankShape) {
  const auto adoption = analysis::adoption_by_rank(ecosystem, 20);
  ASSERT_EQ(adoption.bin_centers.size(), 20u);
  // Fig 2/11: popular bins have higher HTTPS and stapling rates than tail
  // bins.
  EXPECT_GT(adoption.https_pct.front(), adoption.https_pct.back());
  EXPECT_GT(adoption.staple_pct.front(), adoption.staple_pct.back());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_GE(adoption.https_pct[i], 55.0);
    EXPECT_LE(adoption.https_pct[i], 90.0);
    EXPECT_GE(adoption.ocsp_pct[i], 80.0);
  }
}

TEST_F(EcosystemFixture, AdoptionOverTimeHasCloudflareJump) {
  const auto series = analysis::adoption_over_time(ecosystem);
  ASSERT_EQ(series.month_index.size(), 28u);
  // Stapling grows over the window...
  EXPECT_GT(series.staple_pct.back(), series.staple_pct.front());
  // ...with a visible jump at month 13 (June 2017, the Cloudflare event).
  const double jump = series.staple_pct[13] - series.staple_pct[12];
  double typical = 0.0;
  for (int m = 1; m < 28; ++m) {
    if (m == 13) continue;
    typical += std::abs(series.staple_pct[m] - series.staple_pct[m - 1]);
  }
  typical /= 26.0;
  EXPECT_GT(jump, typical * 2.0);
}

// -------------------------------------------------------------- study api --

TEST(MustStapleStudy, EndToEndTinyRun) {
  core::StudyConfig config;
  config.ecosystem = small_config();
  config.scan.interval = Duration::hours(24);
  config.consistency.revoked_population = 400;
  core::MustStapleStudy study(config);
  const core::ReadinessReport report = study.run();

  EXPECT_FALSE(report.web_is_ready);  // the paper's conclusion
  EXPECT_EQ(report.browsers_tested, 16u);
  EXPECT_EQ(report.browsers_requesting, 16u);
  EXPECT_EQ(report.browsers_respecting, 4u);
  EXPECT_EQ(report.servers_fully_correct, 0u);
  EXPECT_GT(report.responders_with_outage, 0u);
  EXPECT_GE(report.responders_never_reachable, 2u);
  EXPECT_EQ(report.verdicts.size(), 4u);

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("NOT ready"), std::string::npos);
  EXPECT_NE(rendered.find("NOT READY"), std::string::npos);
}

}  // namespace
}  // namespace mustaple::measurement
