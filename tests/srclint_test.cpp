// Fixture-driven tests for tools/srclint: every rule firing, every
// suppression path, the golden JSON shape, and the in-tree gate that keeps
// src/ at zero unsuppressed findings. Fixtures are in-memory strings fed to
// Checker::check_text so the suite never depends on scratch files.
#include "srclint/srclint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace srclint = mustaple::srclint;

namespace {

std::vector<std::string> rule_ids(const std::vector<srclint::Finding>& fs) {
  std::vector<std::string> ids;
  for (const auto& f : fs) ids.push_back(f.rule_id);
  return ids;
}

srclint::Report check(const std::string& content,
                      const std::string& path = "src/fixture/fixture.cpp") {
  return srclint::Checker().check_text(path, content);
}

TEST(SrclintRules, WallClockFires) {
  const auto report =
      check("auto now = std::chrono::system_clock::now();\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_wallclock_in_sim");
  EXPECT_EQ(report.findings[0].line, 1u);
}

TEST(SrclintRules, WallClockAllowlistedFileIsExempt) {
  const auto report = check("auto now = std::chrono::steady_clock::now();\n",
                            "src/obs/resource.cpp");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(SrclintRules, WallClockInCommentOrStringIgnored) {
  const auto report = check(
      "// std::chrono::system_clock::now() is forbidden here\n"
      "log(\"std::chrono::system_clock\");\n"
      "/* clock_gettime(CLOCK_REALTIME, &ts); */\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, RandomFires) {
  const auto report = check(
      "std::random_device rd;\n"
      "int x = rand();\n"
      "srand(42);\n");
  EXPECT_EQ(rule_ids(report.findings),
            (std::vector<std::string>{"sl_nondeterministic_random",
                                      "sl_nondeterministic_random",
                                      "sl_nondeterministic_random"}));
}

TEST(SrclintRules, RandTokenNeedsWordBoundary) {
  // "operand(" and "brand(" must not trip the rand() detector.
  const auto report = check("auto v = expr.operand(0); brand(v);\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, ObsUngatedFires) {
  const auto report =
      check("obs::default_registry().counter(\"x\").inc();\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_obs_ungated");
}

TEST(SrclintRules, ObsGatedRegionIsClean) {
  const auto report = check(
      "#if MUSTAPLE_OBS_ENABLED\n"
      "obs::default_registry().counter(\"x\").inc();\n"
      "#endif\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, ObsElseBranchOfGateFires) {
  const auto report = check(
      "#if MUSTAPLE_OBS_ENABLED\n"
      "obs::default_logger().flush();\n"
      "#else\n"
      "obs::default_logger().flush();\n"
      "#endif\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].line, 4u);
}

TEST(SrclintRules, ObsNegatedGateFires) {
  const auto report = check(
      "#if !MUSTAPLE_OBS_ENABLED\n"
      "obs::default_registry().gauge(\"x\").set(1);\n"
      "#endif\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_obs_ungated");
}

TEST(SrclintRules, ObsUnrelatedConditionalStillFires) {
  const auto report = check(
      "#if defined(__linux__)\n"
      "obs::default_registry().counter(\"x\").inc();\n"
      "#endif\n");
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(SrclintRules, ObsImplementationFilesAreExempt) {
  const auto report = check("obs::default_registry().counter(\"x\").inc();\n",
                            "src/obs/metrics.cpp");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, ViewBindsTemporaryFires) {
  const auto report =
      check("asn1::BytesView view = builder.encode();\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_view_binds_temporary");
}

TEST(SrclintRules, ViewBindsTemporaryJoinsLogicalLines) {
  // The declaration spans physical lines; the rule must see it whole.
  const auto report = check(
      "asn1::BytesView view =\n"
      "    certificate.to_der();\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_view_binds_temporary");
  EXPECT_EQ(report.findings[0].line, 1u);
}

TEST(SrclintRules, ViewOverOwnedValueIsClean) {
  const auto report = check(
      "const Bytes der = builder.encode();\n"
      "asn1::BytesView view(der);\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, UnguardedMutexFieldFires) {
  const auto report = check(
      "class Cache {\n"
      "  util::Mutex mu_;\n"
      "  std::vector<int> entries_;\n"
      "};\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_unguarded_mutex_field");
  EXPECT_EQ(report.findings[0].line, 3u);
}

TEST(SrclintRules, GuardedAndExemptFieldsAreClean) {
  const auto report = check(
      "class Cache {\n"
      "  mutable util::Mutex mu_;\n"
      "  std::vector<int> entries_ MUSTAPLE_GUARDED_BY(mu_);\n"
      "  std::map<int, int>* table_ MUSTAPLE_PT_GUARDED_BY(mu_);\n"
      "  std::atomic<bool> running_{false};\n"
      "  util::CondVar cv_;\n"
      "  std::thread worker_;\n"
      "  static constexpr int kLimit = 3;\n"
      "};\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, GuardedMultiLineDeclarationIsClean) {
  // GUARDED_BY on the continuation line — logical-line joining must see it
  // (this is the src/core/study.hpp live_scanner_ shape).
  const auto report = check(
      "class Study {\n"
      "  mutable util::Mutex scanner_mu_;\n"
      "  measurement::HourlyScanner* live_scanner_\n"
      "      MUSTAPLE_GUARDED_BY(scanner_mu_) = nullptr;\n"
      "};\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, WindowClosesAtAccessLabelAndBrace) {
  const auto report = check(
      "class Cache {\n"
      "  util::Mutex mu_;\n"
      " public:\n"
      "  std::vector<int> entries_;\n"
      "};\n"
      "struct Free { std::vector<int> other; };\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, NestedStructInsideWindowIsSkipped) {
  // Fields of a member-struct DEFINITION are not mutex-adjacent state of
  // the enclosing class (the src/obs/prof.hpp PathNode shape).
  const auto report = check(
      "class Profiler {\n"
      "  mutable util::Mutex paths_mu_;\n"
      "  struct PathNode {\n"
      "    int parent = 0;\n"
      "    std::string name;\n"
      "  };\n"
      "  std::vector<PathNode> paths_ MUSTAPLE_GUARDED_BY(paths_mu_);\n"
      "};\n");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintRules, RawStdMutexFires) {
  const auto report = check(
      "std::mutex mu;\n"
      "std::lock_guard<std::mutex> lock(mu);\n"
      "std::condition_variable cv;\n");
  // Line 2 carries both std::lock_guard and std::mutex but reports once.
  EXPECT_EQ(rule_ids(report.findings),
            (std::vector<std::string>{"sl_raw_std_mutex", "sl_raw_std_mutex",
                                      "sl_raw_std_mutex"}));
}

TEST(SrclintRules, MutexWrapperFileIsExempt) {
  const auto report = check("std::mutex mu_;\n", "src/util/mutex.hpp");
  EXPECT_TRUE(report.findings.empty());
}

TEST(SrclintSuppression, SameLineAllowMoves_FindingToSuppressed) {
  const auto report = check(
      "int x = rand();  // SRCLINT-ALLOW(sl_nondeterministic_random): "
      "fixture needs noise\n");
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].rule_id, "sl_nondeterministic_random");
  EXPECT_EQ(report.suppressed[0].suppress_reason, "fixture needs noise");
}

TEST(SrclintSuppression, LineAboveAllowApplies) {
  const auto report = check(
      "// SRCLINT-ALLOW(sl_raw_std_mutex): exercising the raw type\n"
      "std::mutex mu;\n");
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.suppressed.size(), 1u);
}

TEST(SrclintSuppression, WrongRuleIdDoesNotSuppress) {
  const auto report = check(
      "// SRCLINT-ALLOW(sl_wallclock_in_sim): wrong rule\n"
      "std::mutex mu;\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_raw_std_mutex");
}

TEST(SrclintSuppression, TwoLinesAboveDoesNotSuppress) {
  const auto report = check(
      "// SRCLINT-ALLOW(sl_raw_std_mutex): too far away\n"
      "int filler = 0;\n"
      "std::mutex mu;\n");
  ASSERT_EQ(report.findings.size(), 1u);
}

TEST(SrclintSuppression, MissingReasonIsItselfAFinding) {
  const auto report = check(
      "// SRCLINT-ALLOW(sl_raw_std_mutex):\n"
      "std::mutex mu;\n");
  // Both the malformed allow AND the un-suppressed target are reported.
  EXPECT_EQ(rule_ids(report.findings),
            (std::vector<std::string>{"sl_suppression", "sl_raw_std_mutex"}));
}

TEST(SrclintSuppression, UnknownRuleIdIsItselfAFinding) {
  const auto report =
      check("int x = 0;  // SRCLINT-ALLOW(sl_nonexistent): reason\n");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_suppression");
  EXPECT_NE(report.findings[0].message.find("sl_nonexistent"),
            std::string::npos);
}

TEST(SrclintReport, GoldenJson) {
  srclint::Report report = check(
      "int x = rand();\n"
      "// SRCLINT-ALLOW(sl_raw_std_mutex): fixture lock\n"
      "std::mutex mu;\n",
      "src/fixture/golden.cpp");
  const std::string expected =
      "{\"schema\":\"mustaple-srclint/1\",\"files_scanned\":1,"
      "\"counts\":{\"findings\":1,\"suppressed\":1},"
      "\"by_rule\":{\"sl_nondeterministic_random\":1},"
      "\"findings\":[{\"rule\":\"sl_nondeterministic_random\","
      "\"severity\":\"error\",\"file\":\"src/fixture/golden.cpp\","
      "\"line\":1,\"message\":\"non-deterministic source 'rand(' — derive "
      "randomness from util::Rng seeds\"}],"
      "\"suppressed\":[{\"rule\":\"sl_raw_std_mutex\","
      "\"severity\":\"error\",\"file\":\"src/fixture/golden.cpp\","
      "\"line\":3,\"message\":\"'std::mutex' outside util/mutex.hpp — use "
      "util::Mutex/MutexLock so thread-safety analysis sees the lock\","
      "\"suppress_reason\":\"fixture lock\"}]}\n";
  EXPECT_EQ(report.render_json(), expected);
}

TEST(SrclintReport, MergeAndByRule) {
  srclint::Report a = check("int x = rand();\n", "src/a.cpp");
  const srclint::Report b = check("std::mutex mu;\n", "src/b.cpp");
  a.merge(b);
  EXPECT_EQ(a.files_scanned, 2u);
  const auto counts = a.by_rule();
  EXPECT_EQ(counts.at("sl_nondeterministic_random"), 1u);
  EXPECT_EQ(counts.at("sl_raw_std_mutex"), 1u);
}

TEST(SrclintReport, TextRenderingIsOnePerLine) {
  const auto report = check("int x = rand();\n", "src/a.cpp");
  const std::string text = report.render_text();
  EXPECT_NE(text.find("src/a.cpp:1: [sl_nondeterministic_random]"),
            std::string::npos);
  EXPECT_NE(text.find("1 finding(s), 0 suppressed, 1 file(s) scanned"),
            std::string::npos);
}

TEST(SrclintReport, RuleTableIsComplete) {
  const auto& rules = srclint::builtin_rules();
  const std::vector<std::string> expected = {
      "sl_wallclock_in_sim",    "sl_nondeterministic_random",
      "sl_obs_ungated",         "sl_view_binds_temporary",
      "sl_unguarded_mutex_field", "sl_raw_std_mutex",
      "sl_suppression",         "sl_io",
  };
  ASSERT_EQ(rules.size(), expected.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, expected[i]);
    EXPECT_FALSE(rules[i].citation.empty()) << rules[i].id;
    EXPECT_FALSE(rules[i].description.empty()) << rules[i].id;
  }
}

TEST(SrclintReport, MissingFileIsAnIoFinding) {
  const auto report =
      srclint::Checker().check_file("src/does/not/exist.cpp");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "sl_io");
}

// The in-tree gate: the shipped source must scan clean with the default
// allowlist. This is the same invocation CI runs via the srclint binary;
// having it as a unit test means a plain `ctest` catches a regression
// before any workflow does.
TEST(SrclintGate, RepoSourceTreeIsClean) {
  const srclint::Report report =
      srclint::Checker().check_paths({std::string(SRCLINT_REPO_ROOT) +
                                      "/src"});
  for (const auto& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule_id << "] "
                  << f.message;
  }
  EXPECT_GT(report.files_scanned, 100u);  // the scan actually found the tree
}

}  // namespace
