// End-to-end tests for the real-socket serving mode (net/socket_server.hpp):
// a SocketServer fronting the pre-generated OcspResponder, CrlServer, and
// WebServer over genuine loopback TCP. Covers the ISSUE acceptance
// criterion — a percent-encoded RFC 6960 A.1 GET round-trips over a real
// socket — plus POSTs, pipelined keep-alive, the 431/408/400 protections,
// multi-listener port lookup, the wire-level ResponseCache, and (fork-based,
// compiled out under TSan) the flight recorder dumping a postmortem while a
// server is live. Linux-only by nature; the file still compiles elsewhere.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ca/authority.hpp"
#include "ca/crl_server.hpp"
#include "ca/responder.hpp"
#include "net/event_loop.hpp"
#include "net/network.hpp"
#include "net/socket_server.hpp"
#include "obs/flight.hpp"
#include "ocsp/request.hpp"
#include "ocsp/response.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "webserver/webserver.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

// The fork-in-a-threaded-gtest-binary crash test is meaningless under
// ThreadSanitizer (TSan intercepts the signal and the child is not
// async-signal-safe by TSan's rules), so it is compiled out there.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MUSTAPLE_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define MUSTAPLE_TSAN 1
#endif
#if !defined(MUSTAPLE_TSAN)
#define MUSTAPLE_TSAN 0
#endif

namespace mustaple::net {
namespace {

const util::SimTime kNow = util::make_time(2018, 5, 1, 12);

// RFC 6960 A.1: clients URL-encode the base64 request into the GET path.
std::string percent_encode_base64(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '+') {
      out += "%2B";
    } else if (c == '/') {
      out += "%2F";
    } else if (c == '=') {
      out += "%3D";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// A tiny PKI shared by the socket tests: one CA, a pre-generated responder,
// a CRL server, and one must-staple leaf.
struct Pki {
  util::Rng rng{2024};
  ca::CertificateAuthority authority{"SockCA", kNow - util::Duration::days(2000),
                                     rng};
  ca::OcspResponder responder{authority, ca::ResponderBehavior{},
                              "ocsp.sock.example", rng};
  ca::CrlServer crl_server{authority, "crl.sock.example"};
  x509::Certificate leaf;

  Pki() {
    ca::LeafRequest request;
    request.domain = "www.sock.example";
    request.not_before = kNow - util::Duration::days(30);
    request.lifetime = util::Duration::days(365);
    request.must_staple = true;
    request.ocsp_urls = {"http://ocsp.sock.example/"};
    leaf = authority.issue(request, rng);
  }

  ocsp::CertId cert_id() const {
    return ocsp::CertId::for_certificate(leaf, authority.intermediate_cert());
  }

  WireHandler ocsp_handler() {
    return responder.wire_handler([] { return kNow; });
  }
};

#if defined(__linux__)

// Blocking loopback client socket with send/recv timeouts.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct timeval tv {5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

// One request with Connection: close, read to EOF, return raw response.
std::string fetch_raw(std::uint16_t port, const std::string& wire) {
  const int fd = connect_to(port);
  send_all(fd, wire);
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string fetch(std::uint16_t port, const std::string& path) {
  return fetch_raw(port, "GET " + path +
                             " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                             "Connection: close\r\n\r\n");
}

// Splits a raw byte stream into complete HTTP responses using the
// Content-Length framing the server always emits.
std::vector<std::string> split_responses(const std::string& stream) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t head_end = stream.find("\r\n\r\n", at);
    if (head_end == std::string::npos) break;
    std::size_t body_len = 0;
    const std::string head =
        util::to_lower(stream.substr(at, head_end - at));
    const std::size_t cl = head.find("content-length:");
    if (cl != std::string::npos) {
      std::size_t i = cl + std::string("content-length:").size();
      while (i < head.size() && head[i] == ' ') ++i;
      while (i < head.size() && head[i] >= '0' && head[i] <= '9') {
        body_len = body_len * 10 + static_cast<std::size_t>(head[i] - '0');
        ++i;
      }
    }
    const std::size_t total = head_end - at + 4 + body_len;
    if (at + total > stream.size()) break;
    out.push_back(stream.substr(at, total));
    at += total;
  }
  return out;
}

std::string body_of(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? std::string()
                                       : response.substr(head_end + 4);
}

// ------------------------------------------------------------ round trips --

TEST(SocketServer, PercentEncodedGetRoundTripsOverARealSocket) {
  // THE acceptance criterion: an RFC 6960 A.1 GET with percent-encoded
  // base64 path, over genuine TCP, answered with a verifiable OCSP response.
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());

  const auto request = ocsp::OcspRequest::single(pki.cert_id());
  const std::string path =
      "/" + percent_encode_base64(util::base64_encode(request.encode_der()));
  ASSERT_NE(path.find('%'), std::string::npos)
      << "corpus must actually exercise percent-decoding: " << path;

  const std::string raw = fetch(server.port(std::size_t{0}), path);
  ASSERT_EQ(raw.rfind("HTTP/1.1 200", 0), 0u) << raw;
  EXPECT_NE(raw.find("application/ocsp-response"), std::string::npos);

  const std::string body = body_of(raw);
  const auto parsed =
      ocsp::OcspResponse::parse(util::Bytes(body.begin(), body.end()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().successful());
  ASSERT_EQ(parsed.value().responses().size(), 1u);
  EXPECT_EQ(parsed.value().responses()[0].cert_id, pki.cert_id());
  server.stop();
}

TEST(SocketServer, OcspPostRoundTrips) {
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());

  const util::Bytes der = ocsp::OcspRequest::single(pki.cert_id()).encode_der();
  std::string wire =
      "POST / HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/ocsp-request\r\n"
      "Content-Length: " + std::to_string(der.size()) +
      "\r\nConnection: close\r\n\r\n";
  wire.append(der.begin(), der.end());

  const std::string raw = fetch_raw(server.port(std::size_t{0}), wire);
  ASSERT_EQ(raw.rfind("HTTP/1.1 200", 0), 0u) << raw;
  const std::string body = body_of(raw);
  const auto parsed =
      ocsp::OcspResponse::parse(util::Bytes(body.begin(), body.end()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().successful());
  server.stop();
}

TEST(SocketServer, PipelinedKeepAliveServesEveryRequest) {
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());

  const std::string path =
      "/" + percent_encode_base64(util::base64_encode(
                ocsp::OcspRequest::single(pki.cert_id()).encode_der()));
  const std::string one =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  const std::string last =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Connection: close\r\n\r\n";

  // Five requests in one write; the last one closes, so read-to-EOF
  // collects exactly five framed responses.
  const std::string raw = fetch_raw(server.port(std::size_t{0}),
                                    one + one + one + one + last);
  const auto responses = split_responses(raw);
  ASSERT_EQ(responses.size(), 5u) << raw;
  for (const auto& response : responses) {
    EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  }
  EXPECT_GE(server.stats().requests, 5u);
  server.stop();
}

TEST(SocketServer, ThreeListenersServeTheirOwnHandlers) {
  Pki pki;
  net::EventLoop loop(kNow - util::Duration::days(1));
  net::Network network(loop, 7);
  pki.responder.install(network);
  webserver::WebServerConfig config;
  config.software = webserver::Software::kIdeal;
  webserver::WebServer web("www.sock.example",
                           pki.authority.chain_for(pki.leaf), config, network);
  loop.run_until(kNow);
  web.start(kNow);

  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  server.add_listener("crl", 0,
                      pki.crl_server.wire_handler([] { return kNow; }));
  server.add_listener("web", 0, web.wire_handler([] { return kNow; }));
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.listener_count(), 3u);
  EXPECT_EQ(server.port("ocsp"), server.port(std::size_t{0}));
  EXPECT_NE(server.port("crl"), 0);
  EXPECT_NE(server.port("web"), server.port("crl"));

  const std::string crl = fetch(server.port("crl"), "/ca.crl");
  EXPECT_EQ(crl.rfind("HTTP/1.1 200", 0), 0u) << crl;
  EXPECT_NE(crl.find("application/pkix-crl"), std::string::npos);

  const std::string staple = fetch(server.port("web"), "/staple");
  ASSERT_EQ(staple.rfind("HTTP/1.1 200", 0), 0u) << staple;
  const std::string der = body_of(staple);
  const auto parsed =
      ocsp::OcspResponse::parse(util::Bytes(der.begin(), der.end()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().successful());

  const std::string status = fetch(server.port("web"), "/");
  EXPECT_NE(status.find("www.sock.example"), std::string::npos);
  server.stop();
}

// ------------------------------------------------------------ protections --

TEST(SocketServer, OversizedRequestIsRejectedWith431) {
  Pki pki;
  SocketServer::Options options;
  options.max_request_bytes = 512;
  SocketServer server(options);
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());

  const std::string raw = fetch_raw(
      server.port(std::size_t{0}),
      "GET / HTTP/1.1\r\nx-padding: " + std::string(2048, 'a') + "\r\n\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 431", 0), 0u) << raw;
  EXPECT_EQ(server.stats().responses_431, 1u);

  // A small parseable head declaring a huge body must 431 too.
  const std::string big_body = fetch_raw(
      server.port(std::size_t{0}),
      "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 100000\r\n\r\n" +
          std::string(2048, 'b'));
  EXPECT_EQ(big_body.rfind("HTTP/1.1 431", 0), 0u) << big_body;
  server.stop();
}

TEST(SocketServer, SlowLorisIsAnswered408OnDeadline) {
  Pki pki;
  SocketServer::Options options;
  options.read_timeout_ms = 100;
  SocketServer server(options);
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());

  // An incomplete head that then stalls: the deadline sweep must answer
  // 408 rather than pin the connection forever.
  const std::string raw = fetch_raw(server.port(std::size_t{0}),
                                    "GET / HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
  EXPECT_EQ(server.stats().responses_408, 1u);
  server.stop();
}

TEST(SocketServer, ConflictingContentLengthIsA400OverTheWire) {
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());
  const std::string raw = fetch_raw(
      server.port(std::size_t{0}),
      "POST / HTTP/1.1\r\nHost: h\r\n"
      "Content-Length: 4\r\nContent-Length: 5\r\n\r\nabcde");
  EXPECT_EQ(raw.rfind("HTTP/1.1 400", 0), 0u) << raw;
  server.stop();
}

TEST(SocketServer, MalformedRequestLineIsA400) {
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());
  const std::string raw =
      fetch_raw(server.port(std::size_t{0}), "NOT-EVEN-HTTP\r\n\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 400", 0), 0u) << raw;
  server.stop();
}

// -------------------------------------------------------------- lifecycle --

TEST(SocketServer, StartWithoutListenersFails) {
  SocketServer server;
  const auto status = server.start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "serve.no_listeners");
}

TEST(SocketServer, StopIsIdempotentAndServerRestartable) {
  Pki pki;
  SocketServer server;
  server.add_listener("ocsp", 0, pki.ocsp_handler());
  ASSERT_TRUE(server.start().ok());
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  // The fds really closed: the same object can start again.
  ASSERT_TRUE(server.start().ok());
  const std::string raw = fetch(server.port(std::size_t{0}), "/");
  EXPECT_EQ(raw.rfind("HTTP/1.1", 0), 0u);
  server.stop();
}

// ----------------------------------------------------------- ResponseCache --

TEST(ResponseCache, WrapServesIdenticalBytesAndCountsHits) {
  Pki pki;
  std::atomic<int> calls{0};
  WireHandler inner = pki.ocsp_handler();
  WireHandler counted = [&calls, inner](const HttpRequest& request) {
    ++calls;
    return inner(request);
  };
  ResponseCache cache(4, 64);
  WireHandler wrapped = cache.wrap(std::move(counted));

  HttpRequest request;
  request.method = "GET";
  request.path = "/" + percent_encode_base64(util::base64_encode(
                           ocsp::OcspRequest::single(pki.cert_id())
                               .encode_der()));
  const HttpResponse first = wrapped(request);
  const HttpResponse second = wrapped(request);
  EXPECT_EQ(calls.load(), 1) << "second call must be served from the cache";
  EXPECT_EQ(first.serialize(), second.serialize());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A different request is a miss, not a false hit.
  HttpRequest other = request;
  other.method = "POST";
  other.path = "/";
  other.body = ocsp::OcspRequest::single(pki.cert_id()).encode_der();
  wrapped(other);
  EXPECT_EQ(calls.load(), 2);
}

TEST(ResponseCache, EpochChangeInvalidates) {
  std::atomic<int> calls{0};
  std::atomic<std::uint64_t> epoch{1};
  ResponseCache cache(4, 64);
  WireHandler wrapped = cache.wrap(
      [&calls](const HttpRequest&) {
        ++calls;
        return HttpResponse::make(200, "OK", util::bytes_of("x"),
                                  "text/plain");
      },
      [&epoch] { return epoch.load(); });

  HttpRequest request;
  request.method = "GET";
  request.path = "/cached";
  wrapped(request);
  wrapped(request);
  EXPECT_EQ(calls.load(), 1);
  epoch = 2;  // e.g. the responder rolled a pre-generation cycle
  wrapped(request);
  EXPECT_EQ(calls.load(), 2);
}

// ------------------------------------------------- crash-safety, serving --

#if !MUSTAPLE_TSAN

// A forked child runs a live SocketServer AND an armed flight recorder,
// then dies on SIGSEGV: the postmortem artifacts must land even with
// server worker threads running — the crash path cannot deadlock on them.
TEST(SocketServer, FlightRecorderDumpsPostmortemWhileServing) {
  const std::string dir = ::testing::TempDir() + "socket_crash";
  ASSERT_EQ(::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Pki pki;
    SocketServer server;
    server.add_listener("ocsp", 0, pki.ocsp_handler());
    if (!server.start().ok()) _exit(6);
    obs::FlightRecorder recorder(32);
    recorder.note_phase("serving:started");
    if (!recorder.install(dir)) _exit(7);
    ::raise(SIGSEGV);
    _exit(8);  // unreachable: the handler re-raises with SIG_DFL semantics
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(dir + "/postmortem.txt");
  std::ostringstream slurped;
  slurped << in.rdbuf();
  const std::string text = slurped.str();
  EXPECT_NE(text.find("SIGSEGV"), std::string::npos) << text;
  EXPECT_NE(text.find("serving:started"), std::string::npos);
}

#endif  // !MUSTAPLE_TSAN

#endif  // defined(__linux__)

}  // namespace
}  // namespace mustaple::net
