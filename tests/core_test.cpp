// Tests for the core MustStapleStudy façade: component toggles, the
// "fixed CAs" ablation switches end-to-end, and report rendering.
#include <gtest/gtest.h>

#include "core/study.hpp"

namespace mustaple::core {
namespace {

using util::Duration;

measurement::EcosystemConfig tiny_ecosystem() {
  measurement::EcosystemConfig config;
  config.seed = 3;
  config.responder_count = 100;
  config.alexa_domains = 5000;
  config.certs_per_responder = 1;
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 4, 28);
  return config;
}

TEST(MustStapleStudy, AllComponentsDisabledStillRenders) {
  StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.run_availability_scan = false;
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  MustStapleStudy study(config);
  const ReadinessReport report = study.run();
  EXPECT_EQ(report.responders_total, 0u);
  EXPECT_EQ(report.browsers_tested, 0u);
  EXPECT_FALSE(report.web_is_ready);
  EXPECT_EQ(report.verdicts.size(), 4u);
  EXPECT_FALSE(report.render().empty());
  // Deployment stats are computed regardless of the toggles.
  EXPECT_GT(report.deployment.total_certs, 0u);
}

TEST(MustStapleStudy, ScanOnlyPopulatesCaSection) {
  StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.scan.interval = Duration::hours(24);
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  MustStapleStudy study(config);
  const ReadinessReport report = study.run();
  EXPECT_GE(report.responders_total, 100u);
  EXPECT_GE(report.responders_never_reachable, 2u);
  EXPECT_GT(report.average_failure_rate, 0.0);
  EXPECT_EQ(report.browsers_tested, 0u);
}

TEST(MustStapleStudy, FixedCaAblationDropsFailures) {
  StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.ecosystem.apply_fault_schedule = false;
  config.ecosystem.apply_pathologies = false;
  config.scan.interval = Duration::hours(24);
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  MustStapleStudy study(config);
  const ReadinessReport report = study.run();
  // No fault schedule: every request succeeds, no outages, nothing dark.
  EXPECT_DOUBLE_EQ(report.average_failure_rate, 0.0);
  EXPECT_EQ(report.responders_with_outage, 0u);
  EXPECT_EQ(report.responders_never_reachable, 0u);
}

TEST(MustStapleStudy, EcosystemAccessorExposesWorld) {
  StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.run_availability_scan = false;
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  MustStapleStudy study(config);
  EXPECT_GE(study.ecosystem().responders().size(), 100u);
  EXPECT_EQ(study.ecosystem().domains().size(), 5000u);
}

TEST(ReadinessReport, RenderMentionsEveryPrincipal) {
  StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.scan.interval = Duration::hours(24);
  config.consistency.revoked_population = 200;
  MustStapleStudy study(config);
  const std::string rendered = study.run().render();
  EXPECT_NE(rendered.find("Certificate authorities"), std::string::npos);
  EXPECT_NE(rendered.find("Clients (browsers)"), std::string::npos);
  EXPECT_NE(rendered.find("Web server software"), std::string::npos);
  EXPECT_NE(rendered.find("Deployment"), std::string::npos);
  EXPECT_NE(rendered.find("NOT ready"), std::string::npos);
}

}  // namespace
}  // namespace mustaple::core
