// Integration tests for the campaign timeline: the per-window availability
// recomputed from timeline counter deltas must agree exactly with the
// scanner's own StepTotals (the Figure 3 pipeline), and a default-config
// study must emit the timeline.csv / trace.json artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "net/event_loop.hpp"
#include "obs/obs.hpp"

namespace mustaple {
namespace {

measurement::EcosystemConfig tiny_ecosystem() {
  measurement::EcosystemConfig config;
  config.seed = 5;
  config.responder_count = 60;
  config.alexa_domains = 3000;
  config.certs_per_responder = 1;
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 4, 30);
  return config;
}

#if MUSTAPLE_OBS_ENABLED

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Timeline, AvailabilityMatchesScannerSteps) {
  measurement::EcosystemConfig config = tiny_ecosystem();
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  scan.validate_responses = false;

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);

  // One timeline window per scan step, aligned to the campaign start.
  obs::Timeline timeline(config.campaign_start, scan.interval);
  obs::Timeline* previous = obs::install_timeline(&timeline);
  scanner.run();
  timeline.flush(config.campaign_end);  // close the final step's window
  obs::install_timeline(previous);

  ASSERT_FALSE(scanner.steps().empty());
  for (net::Region region : net::all_regions()) {
    const std::size_t g = static_cast<std::size_t>(region);
    const util::Series requests = timeline.series(
        "mustaple_scan_requests_total", {{"region", net::to_string(region)}});
    const util::Series availability = timeline.ratio_series(
        "mustaple_scan_successes_total", "mustaple_scan_requests_total",
        {{"region", net::to_string(region)}});

    // Expected series straight from the scanner's own per-step tallies.
    std::size_t i = 0;
    for (const auto& step : scanner.steps()) {
      if (step.requests[g] == 0) continue;
      ASSERT_LT(i, availability.x.size()) << net::to_string(region);
      EXPECT_DOUBLE_EQ(availability.x[i],
                       static_cast<double>(step.when.unix_seconds));
      EXPECT_DOUBLE_EQ(availability.y[i],
                       100.0 * static_cast<double>(step.successes[g]) /
                           static_cast<double>(step.requests[g]));
      EXPECT_DOUBLE_EQ(requests.y[i],
                       static_cast<double>(step.requests[g]));
      ++i;
    }
    EXPECT_EQ(i, availability.x.size()) << net::to_string(region);
  }
}

TEST(Timeline, StudyEmitsTimelineAndTraceArtifacts) {
  const std::string dir = ::testing::TempDir();
  core::StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.scan.interval = util::Duration::hours(12);
  config.scan.validate_responses = false;
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  config.timeline_window = util::Duration::hours(12);
  config.artifact_dir = dir;
  core::MustStapleStudy study(config);
  const core::ReadinessReport report = study.run();

  // The readiness report carries the sim-time availability sparkline.
  EXPECT_NE(report.timeline_summary.find("Timeline:"), std::string::npos);
  EXPECT_NE(report.render().find("Timeline:"), std::string::npos);

  const std::string csv = slurp(dir + "/timeline.csv");
  EXPECT_EQ(csv.rfind("window_start_unix,window_start,window_end_unix,kind,"
                      "metric,labels,value\n",
                      0),
            0u);
  EXPECT_NE(csv.find("mustaple_scan_requests_total"), std::string::npos);

  const std::string timeline_json = slurp(dir + "/timeline.json");
  EXPECT_EQ(timeline_json.rfind("{\"window_seconds\":43200,", 0), 0u);

  // Chrome trace-event array format: starts with '[', contains the process
  // metadata record and at least one vantage-track event.
  const std::string trace = slurp(dir + "/trace.json");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.substr(trace.size() - 2), "]\n");
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"vantage:Oregon\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  std::remove((dir + "/timeline.csv").c_str());
  std::remove((dir + "/timeline.json").c_str());
  std::remove((dir + "/trace.json").c_str());
}

#else  // MUSTAPLE_OBS_OFF

TEST(Timeline, StudyRunsWithObsCompiledOut) {
  core::StudyConfig config;
  config.ecosystem = tiny_ecosystem();
  config.scan.interval = util::Duration::hours(24);
  config.scan.validate_responses = false;
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  core::MustStapleStudy study(config);
  const core::ReadinessReport report = study.run();
  EXPECT_TRUE(report.timeline_summary.empty());
  EXPECT_TRUE(report.trace_summary.empty());
  EXPECT_FALSE(report.render().empty());
}

#endif  // MUSTAPLE_OBS_ENABLED

}  // namespace
}  // namespace mustaple
