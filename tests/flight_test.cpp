// Tests for the pillar-8 flight recorder (obs/flight.hpp): the lock-free
// event ring (ordering, wrap-around drops, truncation), the probe-id ring,
// the log sink's level filter, manual postmortem dumps, and — fork-based,
// Linux only — the real signal path: a child raises SIGSEGV and the parent
// asserts postmortem.{txt,json} landed with ring + snapshot + backtrace.
// Plain library code: compiles and passes under MUSTAPLE_OBS_OFF too.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/logger.hpp"

#if defined(__linux__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

// The fork-in-a-threaded-gtest-binary crash test is meaningless under
// ThreadSanitizer (TSan intercepts the signal and the child is not
// async-signal-safe by TSan's rules), so it is compiled out there.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MUSTAPLE_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define MUSTAPLE_TSAN 1
#endif
#if !defined(MUSTAPLE_TSAN)
#define MUSTAPLE_TSAN 0
#endif

namespace mustaple::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRing, RecordsInOrderAndReportsDrops) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.recorded(), 0u);

  recorder.note_phase("one");
  recorder.note_phase("two");
  const auto two = recorder.snapshot();
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].message, "one");
  EXPECT_EQ(two[0].kind, FlightRecorder::EventKind::kPhase);
  EXPECT_EQ(two[0].index, 0u);
  EXPECT_EQ(two[1].message, "two");
  EXPECT_EQ(recorder.dropped(), 0u);

  for (int i = 3; i <= 7; ++i) {
    recorder.note_phase(std::to_string(i).c_str());
  }
  // 7 events through a 4-slot ring: the oldest 3 are gone.
  EXPECT_EQ(recorder.recorded(), 7u);
  EXPECT_EQ(recorder.dropped(), 3u);
  const auto ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front().message, "4");
  EXPECT_EQ(ring.back().message, "7");
  EXPECT_EQ(ring.back().index, 6u);

  recorder.configure(8);  // re-size drops everything
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRing, TruncatesOverlongStringsAndKeepsKindLevel) {
  FlightRecorder recorder(4);
  const std::string long_message(500, 'm');
  const std::string long_component(80, 'c');
  recorder.record(FlightRecorder::EventKind::kHealth, Level::kError,
                  long_component.c_str(), long_message.c_str(), 1234);
  const auto ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].kind, FlightRecorder::EventKind::kHealth);
  EXPECT_EQ(ring[0].level, Level::kError);
  EXPECT_EQ(ring[0].sim_unix, 1234);
  EXPECT_LT(ring[0].message.size(), long_message.size());
  EXPECT_LT(ring[0].component.size(), long_component.size());
  EXPECT_EQ(ring[0].message, long_message.substr(0, ring[0].message.size()));
}

TEST(FlightRing, ConcurrentWritersLoseNothing) {
  FlightRecorder recorder(4096);
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kEach; ++i) {
        recorder.record(FlightRecorder::EventKind::kLog, Level::kWarn, "test",
                        ("t" + std::to_string(t)).c_str());
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto ring = recorder.snapshot();
  EXPECT_EQ(ring.size(), static_cast<std::size_t>(kThreads * kEach));
  for (const auto& event : ring) {
    EXPECT_FALSE(event.torn);  // writers were done before the read
  }
}

TEST(FlightRing, ProbeRingKeepsTheLastN) {
  FlightRecorder recorder(4);
  for (std::uint64_t id = 1; id <= FlightRecorder::kProbeRing + 5; ++id) {
    recorder.note_probe(id);
  }
  const auto ids = recorder.recent_probe_ids();
  ASSERT_EQ(ids.size(), FlightRecorder::kProbeRing);
  EXPECT_EQ(ids.front(), 6u);
  EXPECT_EQ(ids.back(), FlightRecorder::kProbeRing + 5);
}

TEST(FlightSink, ForwardsOnlyAtOrAboveMinLevel) {
  FlightRecorder recorder(16);
  FlightLogSink sink(recorder);  // default min level: warn

  LogRecord info;
  info.level = Level::kInfo;
  info.component = "scan";
  info.message = "chatty";
  sink.write(info);
  EXPECT_EQ(recorder.recorded(), 0u);

  LogRecord warn;
  warn.level = Level::kWarn;
  warn.component = "scan";
  warn.message = "responder flapped";
  warn.fields.push_back(field("host", "ocsp7.sim"));
  warn.sim_time = util::SimTime{1523000000};
  sink.write(warn);

  const auto ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].kind, FlightRecorder::EventKind::kLog);
  EXPECT_EQ(ring[0].level, Level::kWarn);
  EXPECT_EQ(ring[0].component, "scan");
  EXPECT_NE(ring[0].message.find("responder flapped"), std::string::npos);
  EXPECT_NE(ring[0].message.find("host=ocsp7.sim"), std::string::npos);
  EXPECT_EQ(ring[0].sim_unix, 1523000000);
}

TEST(FlightPostmortem, ManualDumpWritesBothArtifacts) {
  FlightRecorder recorder(16);
  recorder.note_phase("study:start");
  recorder.note_health("scan.cache", false, "hits 3 + misses 1 != lookups 5");
  recorder.note_probe(42);
  recorder.set_snapshot_json("{\"metrics\":{},\"peak_rss_bytes\":7}");

  const std::string dir = ::testing::TempDir() + "flight_manual";
  std::remove((dir + "/postmortem.txt").c_str());
  std::remove((dir + "/postmortem.json").c_str());
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_TRUE(recorder.install(dir));
  EXPECT_TRUE(recorder.installed());
  recorder.write_postmortem("operator dump", 0);
  recorder.uninstall();
  EXPECT_FALSE(recorder.installed());

  const std::string text = slurp(dir + "/postmortem.txt");
  EXPECT_NE(text.find("operator dump"), std::string::npos);
  EXPECT_NE(text.find("study:start"), std::string::npos);
  EXPECT_NE(text.find("scan.cache"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);

  const std::string json = slurp(dir + "/postmortem.json");
  EXPECT_NE(json.find("\"schema\":\"mustaple-postmortem/1\""),
            std::string::npos);
  EXPECT_NE(json.find("study:start"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":7"), std::string::npos);

  // A manual (signal 0) dump must not freeze the snapshot feed.
  recorder.set_snapshot_json("{\"metrics\":{},\"peak_rss_bytes\":8}");
}

TEST(FlightPostmortem, InstallRejectsOverlongDirectory) {
  FlightRecorder recorder(4);
  EXPECT_FALSE(recorder.install(std::string(600, 'd')));
  EXPECT_FALSE(recorder.installed());
}

#if defined(__linux__) && !MUSTAPLE_TSAN

// The real thing: a forked child arms the handlers, seeds the ring, and
// dies on SIGSEGV; the parent asserts the artifacts appeared and that the
// child still died by the signal (the handler re-raises after dumping).
TEST(FlightPostmortem, SignalHandlerWritesArtifactsThenReRaises) {
  const std::string dir = ::testing::TempDir() + "flight_crash";
  ASSERT_EQ(::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FlightRecorder recorder(32);
    recorder.note_phase("availability-scan:start");
    recorder.note_health("proc.rss_budget", false, "rss 900 MiB > 512 MiB");
    for (std::uint64_t id = 1; id <= 10; ++id) recorder.note_probe(id);
    recorder.set_snapshot_json("{\"metrics\":{\"from\":\"child\"}}");
    if (!recorder.install(dir)) _exit(7);
    ::raise(SIGSEGV);
    _exit(8);  // unreachable: the handler re-raises with SIG_DFL semantics
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string text = slurp(dir + "/postmortem.txt");
  EXPECT_NE(text.find("SIGSEGV"), std::string::npos) << text;
  EXPECT_NE(text.find("availability-scan:start"), std::string::npos);
  EXPECT_NE(text.find("proc.rss_budget"), std::string::npos);
  EXPECT_NE(text.find("backtrace"), std::string::npos);

  const std::string json = slurp(dir + "/postmortem.json");
  EXPECT_NE(json.find("\"schema\":\"mustaple-postmortem/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"from\":\"child\""), std::string::npos);
  EXPECT_NE(json.find("availability-scan:start"), std::string::npos);
}

#endif  // defined(__linux__) && !MUSTAPLE_TSAN

}  // namespace
}  // namespace mustaple::obs
