// CA simulation tests: issuance, the dual revocation databases, CRL
// publication, and the OCSP responder's full behaviour-profile space.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ca/authority.hpp"
#include "ca/crl_server.hpp"
#include "ca/responder.hpp"
#include "ocsp/request.hpp"
#include "ocsp/verify.hpp"
#include "x509/verify.hpp"

namespace mustaple::ca {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 1, 12);

struct Fixture : public ::testing::Test {
  util::Rng rng{2024};
  CertificateAuthority authority{"TestCA", kNow - Duration::days(2000), rng};

  x509::Certificate issue(const std::string& domain, bool must_staple = false) {
    LeafRequest request;
    request.domain = domain;
    request.not_before = kNow - Duration::days(30);
    request.lifetime = Duration::days(365);
    request.must_staple = must_staple;
    request.ocsp_urls = {"http://ocsp.testca.example/"};
    request.crl_urls = {"http://crl.testca.example/ca.crl"};
    return authority.issue(request, rng);
  }

  ocsp::CertId id_for(const x509::Certificate& leaf) {
    return ocsp::CertId::for_certificate(leaf, authority.intermediate_cert());
  }
};

// ------------------------------------------------------------- authority --

TEST_F(Fixture, RootAndIntermediateWellFormed) {
  EXPECT_TRUE(authority.root_cert().is_self_signed());
  EXPECT_TRUE(authority.root_cert().extensions().is_ca.value_or(false));
  EXPECT_FALSE(authority.intermediate_cert().is_self_signed());
  EXPECT_TRUE(
      authority.intermediate_cert().verify_signature(
          authority.root_cert().public_key()));
}

TEST_F(Fixture, IssuedChainVerifies) {
  const x509::Certificate leaf = issue("site.example");
  x509::RootStore roots;
  roots.add(authority.root_cert());
  const auto chain = authority.chain_for(leaf);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(x509::verify_chain(chain, roots, kNow).ok());
  EXPECT_TRUE(authority.was_issued(leaf.serial()));
  EXPECT_FALSE(authority.was_issued(Bytes{0x01}));
}

TEST_F(Fixture, SerialsAreUnique) {
  std::set<std::string> serials;
  for (int i = 0; i < 200; ++i) {
    serials.insert(issue("s" + std::to_string(i) + ".example").serial_hex());
  }
  EXPECT_EQ(serials.size(), 200u);
}

TEST_F(Fixture, MustStapleFlagPropagates) {
  EXPECT_TRUE(issue("ms.example", true).extensions().must_staple);
  EXPECT_FALSE(issue("no.example", false).extensions().must_staple);
}

TEST_F(Fixture, RevocationUpdatesBothDatabases) {
  const x509::Certificate leaf = issue("revoked.example");
  authority.revoke(leaf.serial(), kNow - Duration::days(1),
                   crl::ReasonCode::kKeyCompromise, RevocationPolicy{});
  ocsp::RevokedInfo info;
  EXPECT_EQ(authority.ocsp_status(leaf.serial(), &info),
            ocsp::CertStatus::kRevoked);
  EXPECT_EQ(info.revocation_time, kNow - Duration::days(1));
  const RevocationRecord* crl_record = authority.crl_record(leaf.serial());
  ASSERT_NE(crl_record, nullptr);
  EXPECT_EQ(crl_record->revocation_time, kNow - Duration::days(1));
  EXPECT_EQ(crl_record->reason, crl::ReasonCode::kKeyCompromise);
}

TEST_F(Fixture, DefaultPolicyDropsOcspReason) {
  // The paper: 99.99% of reason discrepancies are CRL-has/OCSP-hasn't.
  const x509::Certificate leaf = issue("reason.example");
  authority.revoke(leaf.serial(), kNow, crl::ReasonCode::kSuperseded,
                   RevocationPolicy{});
  ocsp::RevokedInfo info;
  authority.ocsp_status(leaf.serial(), &info);
  EXPECT_EQ(info.reason, std::nullopt);
  EXPECT_EQ(authority.crl_record(leaf.serial())->reason,
            crl::ReasonCode::kSuperseded);
}

TEST_F(Fixture, OcspTimeOffsetApplied) {
  const x509::Certificate leaf = issue("lag.example");
  RevocationPolicy policy;
  policy.ocsp_time_offset = Duration::hours(9);  // the msocsp pattern
  authority.revoke(leaf.serial(), kNow, std::nullopt, policy);
  ocsp::RevokedInfo info;
  authority.ocsp_status(leaf.serial(), &info);
  EXPECT_EQ(info.revocation_time - kNow, Duration::hours(9));
  EXPECT_EQ(authority.crl_record(leaf.serial())->revocation_time, kNow);
}

TEST_F(Fixture, IngestFailureAnswersGood) {
  const x509::Certificate leaf = issue("lost.example");
  RevocationPolicy policy;
  policy.ocsp_ingest = RevocationPolicy::OcspIngest::kMissingAnswersGood;
  authority.revoke(leaf.serial(), kNow, std::nullopt, policy);
  EXPECT_EQ(authority.ocsp_status(leaf.serial(), nullptr),
            ocsp::CertStatus::kGood);  // Table 1's Good-for-revoked
  EXPECT_NE(authority.crl_record(leaf.serial()), nullptr);  // CRL has it
}

TEST_F(Fixture, IngestFailureAnswersUnknown) {
  const x509::Certificate leaf = issue("lost2.example");
  RevocationPolicy policy;
  policy.ocsp_ingest = RevocationPolicy::OcspIngest::kMissingAnswersUnknown;
  authority.revoke(leaf.serial(), kNow, std::nullopt, policy);
  EXPECT_EQ(authority.ocsp_status(leaf.serial(), nullptr),
            ocsp::CertStatus::kUnknown);
}

TEST_F(Fixture, UnknownSerialIsUnknown) {
  EXPECT_EQ(authority.ocsp_status(Bytes{0xde, 0xad}, nullptr),
            ocsp::CertStatus::kUnknown);
}

TEST_F(Fixture, PublishedCrlContainsRevocations) {
  const x509::Certificate a = issue("a.example");
  const x509::Certificate b = issue("b.example");
  authority.revoke(a.serial(), kNow - Duration::days(2),
                   crl::ReasonCode::kUnspecified, RevocationPolicy{});
  const crl::Crl crl = authority.publish_crl(kNow, Duration::days(7));
  EXPECT_TRUE(crl.is_revoked(a.serial()));
  EXPECT_FALSE(crl.is_revoked(b.serial()));
  EXPECT_TRUE(crl.verify_signature(
      authority.intermediate_cert().public_key()));
  EXPECT_TRUE(crl.is_fresh_at(kNow + Duration::days(6)));
}

// ------------------------------------------------------------- responder --

struct ResponderFixture : public Fixture {
  net::EventLoop loop{kNow - Duration::days(1)};
  net::Network network{loop, 7};

  ocsp::VerifiedResponse probe(OcspResponder& responder,
                               const x509::Certificate& leaf, SimTime when) {
    loop.run_until(when);
    const auto id = id_for(leaf);
    auto result = network.http_post(
        net::Region::kVirginia, net::parse_url(responder.url()).value(),
        ocsp::OcspRequest::single(id).encode_der(), "application/ocsp-request");
    if (!result.success()) {
      ocsp::VerifiedResponse failed;
      failed.error_code = "transport";
      return failed;
    }
    return ocsp::verify_ocsp_response(
        result.response.body, id,
        authority.intermediate_cert().public_key(), when);
  }
};

TEST_F(ResponderFixture, GoodCertificateAnsweredGood) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.t.example", rng);
  responder.install(network);
  const auto leaf = issue("good.example");
  const auto verdict = probe(responder, leaf, kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.status, ocsp::CertStatus::kGood);
}

TEST_F(ResponderFixture, RevokedCertificateAnsweredRevoked) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.t.example", rng);
  responder.install(network);
  const auto leaf = issue("bad.example");
  authority.revoke(leaf.serial(), kNow - Duration::days(3),
                   crl::ReasonCode::kKeyCompromise, RevocationPolicy{});
  const auto verdict = probe(responder, leaf, kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.status, ocsp::CertStatus::kRevoked);
}

TEST_F(ResponderFixture, DelegatedSigningVerifies) {
  ResponderBehavior behavior;
  behavior.delegate_signing = true;
  OcspResponder responder(authority, behavior, "ocsp.d.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("d.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.num_certs, 1u);  // the delegation certificate
}

TEST_F(ResponderFixture, BlankNextUpdateServed) {
  ResponderBehavior behavior;
  behavior.validity.reset();
  OcspResponder responder(authority, behavior, "ocsp.b.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("b2.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.next_update, std::nullopt);
}

TEST_F(ResponderFixture, WrongSerialBehaviour) {
  ResponderBehavior behavior;
  behavior.wrong_serial = true;
  OcspResponder responder(authority, behavior, "ocsp.w.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("w.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kSerialMismatch);
}

TEST_F(ResponderFixture, BadSignatureBehaviour) {
  ResponderBehavior behavior;
  behavior.bad_signature = true;
  OcspResponder responder(authority, behavior, "ocsp.s.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("s.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kBadSignature);
}

TEST_F(ResponderFixture, MalformedBodies) {
  for (auto mode : {ResponderBehavior::Malform::kZeroBody,
                    ResponderBehavior::Malform::kEmptyBody,
                    ResponderBehavior::Malform::kJavascriptBody}) {
    ResponderBehavior behavior;
    behavior.malform = mode;
    OcspResponder responder(authority, behavior,
                            "ocsp.m" + std::to_string(static_cast<int>(mode)) +
                                ".example",
                            rng);
    responder.install(network);
    const auto verdict = probe(responder, issue("m.example"), kNow);
    EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kUnparseable);
  }
}

TEST_F(ResponderFixture, MalformWindowsOnlyInsideWindow) {
  ResponderBehavior behavior;
  behavior.malform = ResponderBehavior::Malform::kZeroBody;
  behavior.malform_windows = {
      {kNow + Duration::hours(1), kNow + Duration::hours(3)}};
  OcspResponder responder(authority, behavior, "ocsp.win.example", rng);
  responder.install(network);
  const auto leaf = issue("win.example");
  EXPECT_EQ(probe(responder, leaf, kNow).outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(probe(responder, leaf, kNow + Duration::hours(2)).outcome,
            ocsp::CheckOutcome::kUnparseable);
  EXPECT_EQ(probe(responder, leaf, kNow + Duration::hours(4)).outcome,
            ocsp::CheckOutcome::kOk);
}

TEST_F(ResponderFixture, ExtraSerialsAndCerts) {
  ResponderBehavior behavior;
  behavior.extra_serials = 19;
  behavior.extra_certs = 4;  // the ocsp.cpc.gov.ae pattern
  OcspResponder responder(authority, behavior, "ocsp.x.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("x.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.num_serials, 20u);
  EXPECT_EQ(verdict.num_certs, 4u);
}

TEST_F(ResponderFixture, OnDemandZeroMargin) {
  ResponderBehavior behavior;
  behavior.pre_generate = false;
  behavior.this_update_margin = Duration::secs(0);
  OcspResponder responder(authority, behavior, "ocsp.z.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("z.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.this_update, kNow);  // zero margin (Fig 9's 17.2%)
  EXPECT_EQ(verdict.produced_at, kNow);
}

TEST_F(ResponderFixture, FutureThisUpdateRejectedByClient) {
  ResponderBehavior behavior;
  behavior.pre_generate = false;
  behavior.this_update_margin = Duration::minutes(-10);  // 3% of responders
  OcspResponder responder(authority, behavior, "ocsp.f.example", rng);
  responder.install(network);
  const auto verdict = probe(responder, issue("f.example"), kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kNotYetValid);
}

TEST_F(ResponderFixture, PreGeneratedResponsesStableWithinCycle) {
  ResponderBehavior behavior;
  behavior.pre_generate = true;
  behavior.update_interval = Duration::hours(6);
  behavior.this_update_margin = Duration::secs(0);
  OcspResponder responder(authority, behavior, "ocsp.pg.example", rng);
  responder.install(network);
  const auto leaf = issue("pg.example");
  const auto v1 = probe(responder, leaf, kNow);
  const auto v2 = probe(responder, leaf, kNow + Duration::hours(1));
  EXPECT_EQ(v1.produced_at, v2.produced_at);  // same cycle, cached
  const auto v3 = probe(responder, leaf, kNow + Duration::hours(7));
  EXPECT_GT(v3.produced_at.unix_seconds, v1.produced_at.unix_seconds);
}

TEST_F(ResponderFixture, TryLaterMode) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.tl.example",
                          rng);
  responder.install(network);
  const auto leaf = issue("tl.example");
  EXPECT_EQ(probe(responder, leaf, kNow).outcome, ocsp::CheckOutcome::kOk);
  responder.set_try_later(true);
  EXPECT_EQ(probe(responder, leaf, kNow + Duration::secs(10)).outcome,
            ocsp::CheckOutcome::kNotSuccessful);
  responder.set_try_later(false);
  EXPECT_EQ(probe(responder, leaf, kNow + Duration::secs(20)).outcome,
            ocsp::CheckOutcome::kOk);
}

TEST_F(ResponderFixture, TryLaterAccessorTracksLiveSwitchNotBehavior) {
  // Regression: the live tryLater switch became an atomic separate from the
  // construction-time behavior profile (set_try_later() races serving
  // threads). behavior() keeps reporting the configured profile.
  ResponderBehavior behavior;
  behavior.respond_try_later = true;
  OcspResponder responder(authority, behavior, "ocsp.tl3.example", rng);
  EXPECT_TRUE(responder.try_later());
  responder.set_try_later(false);
  EXPECT_FALSE(responder.try_later());
  EXPECT_TRUE(responder.behavior().respond_try_later);  // profile unchanged
}

TEST_F(ResponderFixture, TryLaterFlipsAreSafeAgainstConcurrentServing) {
  // Toggle the switch from another thread while probes are served; each
  // probe must land on one of the two modes, never anything else. Run under
  // TSan to check the data-race half of the contract.
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.tl4.example",
                          rng);
  responder.install(network);
  const auto leaf = issue("tl4.example");
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool value = true;
    while (!stop.load()) {
      responder.set_try_later(value);
      value = !value;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto result = probe(responder, leaf, kNow + Duration::secs(i));
    EXPECT_TRUE(result.outcome == ocsp::CheckOutcome::kOk ||
                result.outcome == ocsp::CheckOutcome::kNotSuccessful);
  }
  stop.store(true);
  toggler.join();
}

TEST_F(ResponderFixture, GetWithBadPathIsMalformedRequest) {
  // RFC 6960 Appendix A: GET is supported, with the request base64-encoded
  // into the path; a path that decodes to garbage gets an OCSP-level
  // malformedRequest (still HTTP 200).
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.g.example",
                          rng);
  responder.install(network);
  auto result = network.http_get(net::Region::kParis,
                                 net::parse_url(responder.url()).value());
  ASSERT_EQ(result.response.status_code, 200);
  auto parsed = ocsp::OcspResponse::parse(result.response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().response_status(),
            ocsp::ResponseStatus::kMalformedRequest);
}

TEST_F(ResponderFixture, GetWithEncodedRequestWorks) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.g2.example",
                          rng);
  responder.install(network);
  const auto leaf = issue("get.example");
  const auto id = id_for(leaf);
  loop.run_until(kNow);
  net::Url url = net::parse_url(responder.url()).value();
  url.path = ocsp::OcspRequest::single(id).encode_get_path();
  auto result = network.http_get(net::Region::kParis, url);
  ASSERT_TRUE(result.success());
  const auto verdict = ocsp::verify_ocsp_response(
      result.response.body, id, authority.intermediate_cert().public_key(),
      kNow);
  EXPECT_EQ(verdict.outcome, ocsp::CheckOutcome::kOk);
  EXPECT_EQ(verdict.status, ocsp::CertStatus::kGood);
}

TEST_F(ResponderFixture, UnsupportedMethodRejected) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.g3.example",
                          rng);
  responder.install(network);
  loop.run_until(kNow);
  net::HttpRequest request;
  request.method = "PUT";
  auto result = network.http_request(net::Region::kParis,
                                     net::parse_url(responder.url()).value(),
                                     std::move(request));
  EXPECT_EQ(result.response.status_code, 400);
}

TEST_F(ResponderFixture, GarbageRequestGetsMalformedRequestStatus) {
  OcspResponder responder(authority, ResponderBehavior{}, "ocsp.q.example",
                          rng);
  responder.install(network);
  auto result = network.http_post(net::Region::kParis,
                                  net::parse_url(responder.url()).value(),
                                  util::bytes_of("garbage"),
                                  "application/ocsp-request");
  ASSERT_TRUE(result.success());
  auto parsed = ocsp::OcspResponse::parse(result.response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().response_status(),
            ocsp::ResponseStatus::kMalformedRequest);
}

// ------------------------------------------------------------ crl server --

TEST_F(ResponderFixture, CrlServerServesCurrentCrl) {
  CrlServer server(authority, "crl.t.example", Duration::days(1),
                   Duration::days(7));
  server.install(network);
  const auto leaf = issue("crl.example");
  authority.revoke(leaf.serial(), kNow - Duration::days(1),
                   crl::ReasonCode::kUnspecified, RevocationPolicy{});
  loop.run_until(kNow);
  auto result = network.http_get(net::Region::kOregon,
                                 net::parse_url(server.url()).value());
  ASSERT_TRUE(result.success());
  auto parsed = crl::Crl::parse(result.response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().is_revoked(leaf.serial()));
  EXPECT_TRUE(parsed.value().is_fresh_at(kNow));
  // thisUpdate is publication-cycle aligned (midnight for daily cadence).
  EXPECT_EQ(parsed.value().this_update(), util::make_time(2018, 5, 1));
}

TEST_F(ResponderFixture, CrlServerRejectsPost) {
  CrlServer server(authority, "crl.p.example");
  server.install(network);
  loop.run_until(kNow);
  auto result = network.http_post(net::Region::kOregon,
                                  net::parse_url(server.url()).value(),
                                  util::bytes_of("x"), "text/plain");
  EXPECT_EQ(result.response.status_code, 400);
}

}  // namespace
}  // namespace mustaple::ca
