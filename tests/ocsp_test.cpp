// OCSP protocol tests: request/response wire format, every certStatus
// variant, delegation, and the full client-side verification taxonomy of
// paper §5.3/§5.4.
#include <gtest/gtest.h>

#include "crypto/signer.hpp"
#include "ocsp/request.hpp"
#include "ocsp/response.hpp"
#include "ocsp/types.hpp"
#include "ocsp/verify.hpp"
#include "util/base64.hpp"
#include "x509/certificate.hpp"

namespace mustaple::ocsp {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 1, 12);

struct World {
  util::Rng rng;
  crypto::KeyPair issuer_key;
  x509::Certificate issuer;
  x509::Certificate leaf;

  explicit World(std::uint64_t seed = 77)
      : rng(seed), issuer_key(crypto::KeyPair::generate_sim(rng)) {
    const x509::DistinguishedName issuer_dn{"Issuing CA", "T", "US"};
    issuer = x509::CertificateBuilder()
                 .serial_number(1)
                 .subject(issuer_dn)
                 .issuer(issuer_dn)
                 .validity(kNow - Duration::days(1000),
                           kNow + Duration::days(1000))
                 .public_key(issuer_key.public_key())
                 .ca(true)
                 .sign(issuer_key);
    leaf = x509::CertificateBuilder()
               .serial_number(0xabcdef)
               .subject(x509::DistinguishedName{"site.example", "", ""})
               .issuer(issuer_dn)
               .validity(kNow - Duration::days(30), kNow + Duration::days(60))
               .public_key(crypto::KeyPair::generate_sim(rng).public_key())
               .add_ocsp_url("http://ocsp.example/")
               .sign(issuer_key);
  }

  CertId cert_id() const { return CertId::for_certificate(leaf, issuer); }

  SingleResponse good_single() const {
    SingleResponse single;
    single.cert_id = cert_id();
    single.status = CertStatus::kGood;
    single.this_update = kNow - Duration::hours(1);
    single.next_update = kNow + Duration::days(7);
    return single;
  }
};

// ---------------------------------------------------------------- CertId --

TEST(CertId, HashesAreWellFormed) {
  World w;
  const CertId id = w.cert_id();
  EXPECT_EQ(id.issuer_name_hash.size(), 20u);  // SHA-1
  EXPECT_EQ(id.issuer_key_hash.size(), 20u);
  EXPECT_EQ(id.serial, w.leaf.serial());
}

TEST(CertId, DifferentIssuersDiffer) {
  World a(1);
  World b(2);  // same structure, different keys
  EXPECT_EQ(a.cert_id().issuer_name_hash, b.cert_id().issuer_name_hash);
  EXPECT_NE(a.cert_id().issuer_key_hash, b.cert_id().issuer_key_hash);
}

// --------------------------------------------------------------- request --

TEST(OcspRequest, SingleRoundTrip) {
  World w;
  const OcspRequest request = OcspRequest::single(w.cert_id());
  auto parsed = OcspRequest::parse(request.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed.value().cert_ids().size(), 1u);
  EXPECT_EQ(parsed.value().cert_ids()[0], w.cert_id());
}

TEST(OcspRequest, MultipleCertIdsRoundTrip) {
  World w;
  CertId second = w.cert_id();
  second.serial.push_back(0x99);
  const OcspRequest request({w.cert_id(), second});
  auto parsed = OcspRequest::parse(request.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().cert_ids().size(), 2u);
}

TEST(OcspRequest, ParseRejectsGarbage) {
  EXPECT_FALSE(OcspRequest::parse(util::bytes_of("nope")).ok());
  const Bytes empty;
  EXPECT_FALSE(OcspRequest::parse(empty).ok());
}

TEST(OcspRequest, GetPathDecodesPercentEncodedBase64) {
  // RFC 6960 Appendix A.1: clients URL-encode the base64 request into the
  // GET path, so '+', '/', '=' arrive as %2B, %2F, %3D and must be
  // percent-decoded BEFORE base64 decoding.
  World w;
  const OcspRequest request = OcspRequest::single(w.cert_id());
  std::string encoded;
  for (const char c : util::base64_encode(request.encode_der())) {
    if (c == '+') {
      encoded += "%2B";
    } else if (c == '/') {
      encoded += "%2F";
    } else if (c == '=') {
      encoded += "%3D";
    } else {
      encoded.push_back(c);
    }
  }
  const auto parsed = OcspRequest::parse_get_path("/" + encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed.value().cert_ids().size(), 1u);
  EXPECT_EQ(parsed.value().cert_ids()[0], w.cert_id());
}

TEST(OcspRequest, GetPathRejectsBadPercentEscape) {
  const auto bad = OcspRequest::parse_get_path("/MEUw%GZ");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "ocsp.get.bad_escape");
  // Truncated escape at end of path.
  EXPECT_FALSE(OcspRequest::parse_get_path("/MEUw%A").ok());
  // Escapes that decode to bytes outside the base64 alphabet reach the
  // base64 layer and are rejected there, not crashed on.
  EXPECT_FALSE(OcspRequest::parse_get_path("/ME%00Uw").ok());
}

// -------------------------------------------------------------- response --

TEST(OcspResponse, GoodResponseRoundTrip) {
  World w;
  const OcspResponse response = OcspResponseBuilder()
                                    .produced_at(kNow - Duration::hours(1))
                                    .add_single(w.good_single())
                                    .sign(w.issuer_key);
  auto parsed = OcspResponse::parse(response.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const OcspResponse& p = parsed.value();
  EXPECT_TRUE(p.successful());
  EXPECT_EQ(p.produced_at(), kNow - Duration::hours(1));
  ASSERT_EQ(p.responses().size(), 1u);
  EXPECT_EQ(p.responses()[0].status, CertStatus::kGood);
  EXPECT_EQ(p.responses()[0].this_update, kNow - Duration::hours(1));
  EXPECT_EQ(p.responses()[0].next_update, kNow + Duration::days(7));
  EXPECT_TRUE(p.verify_signature(w.issuer_key.public_key()));
}

TEST(OcspResponse, RevokedWithReasonRoundTrip) {
  World w;
  SingleResponse single = w.good_single();
  single.status = CertStatus::kRevoked;
  single.revoked = RevokedInfo{kNow - Duration::days(3),
                               crl::ReasonCode::kKeyCompromise};
  const OcspResponse response = OcspResponseBuilder()
                                    .produced_at(kNow)
                                    .add_single(single)
                                    .sign(w.issuer_key);
  auto parsed = OcspResponse::parse(response.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const SingleResponse& p = parsed.value().responses()[0];
  EXPECT_EQ(p.status, CertStatus::kRevoked);
  ASSERT_TRUE(p.revoked.has_value());
  EXPECT_EQ(p.revoked->revocation_time, kNow - Duration::days(3));
  EXPECT_EQ(p.revoked->reason, crl::ReasonCode::kKeyCompromise);
}

TEST(OcspResponse, RevokedWithoutReasonRoundTrip) {
  World w;
  SingleResponse single = w.good_single();
  single.status = CertStatus::kRevoked;
  single.revoked = RevokedInfo{kNow - Duration::days(1), std::nullopt};
  auto parsed = OcspResponse::parse(OcspResponseBuilder()
                                        .produced_at(kNow)
                                        .add_single(single)
                                        .sign(w.issuer_key)
                                        .encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses()[0].revoked->reason, std::nullopt);
}

TEST(OcspResponse, UnknownStatusRoundTrip) {
  World w;
  SingleResponse single = w.good_single();
  single.status = CertStatus::kUnknown;
  auto parsed = OcspResponse::parse(OcspResponseBuilder()
                                        .produced_at(kNow)
                                        .add_single(single)
                                        .sign(w.issuer_key)
                                        .encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses()[0].status, CertStatus::kUnknown);
}

TEST(OcspResponse, BlankNextUpdateRoundTrip) {
  World w;
  SingleResponse single = w.good_single();
  single.next_update.reset();  // "blank nextUpdate" (paper Fig 8)
  auto parsed = OcspResponse::parse(OcspResponseBuilder()
                                        .produced_at(kNow)
                                        .add_single(single)
                                        .sign(w.issuer_key)
                                        .encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses()[0].next_update, std::nullopt);
}

TEST(OcspResponse, MultiSerialResponse) {
  World w;
  OcspResponseBuilder builder;
  builder.produced_at(kNow);
  for (int i = 0; i < 20; ++i) {  // the paper's 20-serial responders
    SingleResponse single = w.good_single();
    single.cert_id.serial.push_back(static_cast<std::uint8_t>(i));
    builder.add_single(single);
  }
  auto parsed = OcspResponse::parse(builder.sign(w.issuer_key).encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses().size(), 20u);
}

TEST(OcspResponse, FindBySerial) {
  World w;
  SingleResponse a = w.good_single();
  SingleResponse b = w.good_single();
  b.cert_id.serial = {0x55};
  b.status = CertStatus::kRevoked;
  b.revoked = RevokedInfo{kNow, std::nullopt};
  const OcspResponse response = OcspResponseBuilder()
                                    .produced_at(kNow)
                                    .add_single(a)
                                    .add_single(b)
                                    .sign(w.issuer_key);
  ASSERT_NE(response.find_by_serial(w.leaf.serial()), nullptr);
  ASSERT_NE(response.find_by_serial({0x55}), nullptr);
  EXPECT_EQ(response.find_by_serial({0x77}), nullptr);
  EXPECT_EQ(response.find_by_serial({0x55})->status, CertStatus::kRevoked);
}

TEST(OcspResponse, EmbeddedCertsRoundTrip) {
  World w;
  const OcspResponse response = OcspResponseBuilder()
                                    .produced_at(kNow)
                                    .add_single(w.good_single())
                                    .add_cert(w.issuer)
                                    .add_cert(w.issuer)
                                    .sign(w.issuer_key);
  auto parsed = OcspResponse::parse(response.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().certs().size(), 2u);
  EXPECT_EQ(parsed.value().certs()[0].subject(), w.issuer.subject());
}

TEST(OcspResponse, ErrorResponsesHaveNoBody) {
  for (ResponseStatus status :
       {ResponseStatus::kMalformedRequest, ResponseStatus::kInternalError,
        ResponseStatus::kTryLater, ResponseStatus::kSigRequired,
        ResponseStatus::kUnauthorized}) {
    const OcspResponse error = OcspResponseBuilder::error(status);
    auto parsed = OcspResponse::parse(error.encode_der());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().response_status(), status);
    EXPECT_FALSE(parsed.value().successful());
    EXPECT_TRUE(parsed.value().responses().empty());
  }
}

TEST(OcspResponse, ParseRejectsGarbage) {
  EXPECT_FALSE(OcspResponse::parse(util::bytes_of("0")).ok());
  EXPECT_FALSE(OcspResponse::parse(util::bytes_of("")).ok());
  EXPECT_FALSE(
      OcspResponse::parse(util::bytes_of("<html>oops</html>")).ok());
}

// ---------------------------------------------------------------- verify --

class VerifyFixture : public ::testing::Test {
 protected:
  World w;

  Bytes signed_der(const SingleResponse& single) {
    return OcspResponseBuilder()
        .produced_at(kNow - Duration::hours(1))
        .add_single(single)
        .sign(w.issuer_key)
        .encode_der();
  }
};

TEST_F(VerifyFixture, GoodResponseIsOk) {
  const auto verdict = verify_ocsp_response(
      signed_der(w.good_single()), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
  EXPECT_TRUE(verdict.usable());
  EXPECT_EQ(verdict.status, CertStatus::kGood);
  EXPECT_EQ(verdict.num_serials, 1u);
  EXPECT_EQ(verdict.num_certs, 0u);
}

TEST_F(VerifyFixture, MalformedBodiesAreUnparseable) {
  for (const char* body : {"", "0", "<html><script>x</script></html>"}) {
    const auto verdict = verify_ocsp_response(util::bytes_of(body),
                                              w.cert_id(),
                                              w.issuer_key.public_key(), kNow);
    EXPECT_EQ(verdict.outcome, CheckOutcome::kUnparseable) << body;
    EXPECT_FALSE(verdict.usable());
  }
}

TEST_F(VerifyFixture, TryLaterIsNotSuccessful) {
  const Bytes der =
      OcspResponseBuilder::error(ResponseStatus::kTryLater).encode_der();
  const auto verdict = verify_ocsp_response(der, w.cert_id(),
                                            w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kNotSuccessful);
  EXPECT_EQ(verdict.error_code, "tryLater");
}

TEST_F(VerifyFixture, SerialMismatchDetected) {
  SingleResponse single = w.good_single();
  single.cert_id.serial = {0x01, 0x02};  // not what we asked for
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kSerialMismatch);
}

TEST_F(VerifyFixture, BadSignatureDetected) {
  util::Rng local(5);
  const crypto::KeyPair rogue = crypto::KeyPair::generate_sim(local);
  const Bytes der = OcspResponseBuilder()
                        .produced_at(kNow)
                        .add_single(w.good_single())
                        .sign(rogue)  // wrong key entirely
                        .encode_der();
  const auto verdict =
      verify_ocsp_response(der, w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kBadSignature);
}

TEST_F(VerifyFixture, DelegatedSigningAccepted) {
  util::Rng local(6);
  const crypto::KeyPair delegate = crypto::KeyPair::generate_sim(local);
  const x509::Certificate delegate_cert =
      x509::CertificateBuilder()
          .serial_number(500)
          .subject(x509::DistinguishedName{"OCSP Signer", "T", "US"})
          .issuer(w.issuer.subject())
          .validity(kNow - Duration::days(1), kNow + Duration::days(365))
          .public_key(delegate.public_key())
          .sign(w.issuer_key);  // delegation cert signed by the issuer
  const Bytes der = OcspResponseBuilder()
                        .produced_at(kNow)
                        .add_single(w.good_single())
                        .add_cert(delegate_cert)
                        .sign(delegate)
                        .encode_der();
  const auto verdict =
      verify_ocsp_response(der, w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
  EXPECT_EQ(verdict.num_certs, 1u);
}

TEST_F(VerifyFixture, DelegateNotSignedByIssuerRejected) {
  util::Rng local(7);
  const crypto::KeyPair delegate = crypto::KeyPair::generate_sim(local);
  const crypto::KeyPair rogue_ca = crypto::KeyPair::generate_sim(local);
  const x509::Certificate bogus_delegate =
      x509::CertificateBuilder()
          .serial_number(501)
          .subject(x509::DistinguishedName{"Evil Signer", "", ""})
          .issuer(w.issuer.subject())
          .validity(kNow - Duration::days(1), kNow + Duration::days(365))
          .public_key(delegate.public_key())
          .sign(rogue_ca);  // NOT signed by the real issuer
  const Bytes der = OcspResponseBuilder()
                        .produced_at(kNow)
                        .add_single(w.good_single())
                        .add_cert(bogus_delegate)
                        .sign(delegate)
                        .encode_der();
  const auto verdict =
      verify_ocsp_response(der, w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kBadSignature);
}

TEST_F(VerifyFixture, FutureThisUpdateRejected) {
  SingleResponse single = w.good_single();
  single.this_update = kNow + Duration::minutes(10);  // premature (Fig 9)
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kNotYetValid);
}

TEST_F(VerifyFixture, ExpiredNextUpdateRejected) {
  SingleResponse single = w.good_single();
  single.this_update = kNow - Duration::days(10);
  single.next_update = kNow - Duration::days(3);
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kExpired);
}

TEST_F(VerifyFixture, BlankNextUpdateAlwaysValid) {
  SingleResponse single = w.good_single();
  single.this_update = kNow - Duration::days(1200);
  single.next_update.reset();
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(),
      kNow + Duration::days(1000));
  // "technically always regarded as valid" (paper §5.4).
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
  EXPECT_EQ(verdict.next_update, std::nullopt);
}

TEST_F(VerifyFixture, ZeroMarginBoundaryAccepted) {
  SingleResponse single = w.good_single();
  single.this_update = kNow;  // becomes valid exactly at receipt (17.2%)
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
}

TEST_F(VerifyFixture, RevokedStatusSurfaced) {
  SingleResponse single = w.good_single();
  single.status = CertStatus::kRevoked;
  single.revoked = RevokedInfo{kNow - Duration::days(2),
                               crl::ReasonCode::kCaCompromise};
  const auto verdict = verify_ocsp_response(
      signed_der(single), w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
  EXPECT_EQ(verdict.status, CertStatus::kRevoked);
  ASSERT_TRUE(verdict.revoked.has_value());
  EXPECT_EQ(verdict.revoked->reason, crl::ReasonCode::kCaCompromise);
}

TEST_F(VerifyFixture, MultiSerialCountsReported) {
  OcspResponseBuilder builder;
  builder.produced_at(kNow).add_single(w.good_single());
  for (int i = 0; i < 19; ++i) {
    SingleResponse extra = w.good_single();
    extra.cert_id.serial.push_back(static_cast<std::uint8_t>(i));
    builder.add_single(extra);
  }
  builder.add_cert(w.issuer);
  const auto verdict =
      verify_ocsp_response(builder.sign(w.issuer_key).encode_der(),
                           w.cert_id(), w.issuer_key.public_key(), kNow);
  EXPECT_EQ(verdict.outcome, CheckOutcome::kOk);
  EXPECT_EQ(verdict.num_serials, 20u);
  EXPECT_EQ(verdict.num_certs, 1u);
}

TEST(CheckOutcomeStrings, AllNamed) {
  for (CheckOutcome outcome :
       {CheckOutcome::kOk, CheckOutcome::kUnparseable,
        CheckOutcome::kNotSuccessful, CheckOutcome::kSerialMismatch,
        CheckOutcome::kBadSignature, CheckOutcome::kNotYetValid,
        CheckOutcome::kExpired}) {
    EXPECT_STRNE(to_string(outcome), "?");
  }
}

TEST(StatusStrings, AllNamed) {
  EXPECT_STREQ(to_string(CertStatus::kGood), "good");
  EXPECT_STREQ(to_string(CertStatus::kRevoked), "revoked");
  EXPECT_STREQ(to_string(CertStatus::kUnknown), "unknown");
  EXPECT_STREQ(to_string(ResponseStatus::kSuccessful), "successful");
  EXPECT_STREQ(to_string(ResponseStatus::kTryLater), "tryLater");
}

}  // namespace
}  // namespace mustaple::ocsp
