// CRL tests: build/parse round trips, revocation entries with and without
// reason codes, freshness windows, and signatures.
#include <gtest/gtest.h>

#include "crl/crl.hpp"

namespace mustaple::crl {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 1);

util::Rng& rng() {
  static util::Rng instance(11);
  return instance;
}

const crypto::KeyPair& key() {
  static const crypto::KeyPair k = crypto::KeyPair::generate_sim(rng());
  return k;
}

Crl make_crl(std::vector<RevokedEntry> entries,
             Duration validity = Duration::days(7)) {
  CrlBuilder builder;
  builder.issuer(x509::DistinguishedName{"Test CA", "T", "US"})
      .this_update(kNow)
      .next_update(kNow + validity);
  for (auto& entry : entries) builder.add_entry(std::move(entry));
  return builder.sign(key());
}

TEST(Crl, EmptyCrlRoundTrip) {
  const Crl crl = make_crl({});
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().entries().empty());
  EXPECT_EQ(parsed.value().this_update(), kNow);
  EXPECT_EQ(parsed.value().next_update(), kNow + Duration::days(7));
  EXPECT_EQ(parsed.value().issuer().common_name, "Test CA");
}

TEST(Crl, EntriesRoundTrip) {
  const Crl crl = make_crl({
      {Bytes{0x01, 0x02}, kNow - Duration::days(3),
       ReasonCode::kKeyCompromise},
      {Bytes{0x03}, kNow - Duration::days(1), std::nullopt},
  });
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const Crl& p = parsed.value();
  ASSERT_EQ(p.entries().size(), 2u);
  EXPECT_EQ(p.entries()[0].serial, (Bytes{0x01, 0x02}));
  EXPECT_EQ(p.entries()[0].revocation_time, kNow - Duration::days(3));
  EXPECT_EQ(p.entries()[0].reason, ReasonCode::kKeyCompromise);
  EXPECT_EQ(p.entries()[1].reason, std::nullopt);
}

TEST(Crl, FindAndIsRevoked) {
  const Crl crl = make_crl({{Bytes{0xaa}, kNow, ReasonCode::kSuperseded}});
  EXPECT_TRUE(crl.is_revoked(Bytes{0xaa}));
  EXPECT_FALSE(crl.is_revoked(Bytes{0xbb}));
  const RevokedEntry* entry = crl.find(Bytes{0xaa});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->reason, ReasonCode::kSuperseded);
}

TEST(Crl, FreshnessWindow) {
  const Crl crl = make_crl({});
  EXPECT_TRUE(crl.is_fresh_at(kNow));
  EXPECT_TRUE(crl.is_fresh_at(kNow + Duration::days(7)));
  EXPECT_FALSE(crl.is_fresh_at(kNow + Duration::days(8)));
  EXPECT_FALSE(crl.is_fresh_at(kNow - Duration::secs(1)));
}

TEST(Crl, SignatureVerifies) {
  const Crl crl = make_crl({{Bytes{0x01}, kNow, std::nullopt}});
  EXPECT_TRUE(crl.verify_signature(key().public_key()));
  EXPECT_FALSE(crl.verify_signature(
      crypto::KeyPair::generate_sim(rng()).public_key()));
  // Signature survives the parse round trip.
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().verify_signature(key().public_key()));
}

TEST(Crl, ParseRejectsGarbage) {
  EXPECT_FALSE(Crl::parse(util::bytes_of("junk")).ok());
  const Bytes empty;
  EXPECT_FALSE(Crl::parse(empty).ok());
}

TEST(Crl, RsaSignedCrl) {
  util::Rng local(3);
  const crypto::KeyPair rsa = crypto::KeyPair::generate_rsa(512, local);
  CrlBuilder builder;
  builder.issuer(x509::DistinguishedName{"RSA CA", "", ""})
      .this_update(kNow)
      .next_update(kNow + Duration::days(1));
  const Crl crl = builder.sign(rsa);
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().verify_signature(rsa.public_key()));
}

TEST(Crl, LargeCrlRoundTrip) {
  // The paper complains CRLs can reach 76 MB; exercise a few thousand
  // entries to prove the encoder/parser scale past trivial sizes.
  std::vector<RevokedEntry> entries;
  for (std::uint32_t i = 1; i <= 3000; ++i) {
    RevokedEntry entry;
    entry.serial = {static_cast<std::uint8_t>(i >> 16),
                    static_cast<std::uint8_t>(i >> 8),
                    static_cast<std::uint8_t>(i)};
    entry.revocation_time = kNow - Duration::secs(i);
    if (i % 3 == 0) entry.reason = ReasonCode::kCessationOfOperation;
    entries.push_back(entry);
  }
  const Crl crl = make_crl(std::move(entries));
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entries().size(), 3000u);
  // DER INTEGER normalization strips leading zero octets, so the parsed
  // serial for 3000 is the minimal {0x0b, 0xb8}.
  EXPECT_TRUE(parsed.value().is_revoked(Bytes{0x0b, 0xb8}));
}

// All reason codes survive the wire format.
class ReasonCodeRoundTrip : public ::testing::TestWithParam<ReasonCode> {};

TEST_P(ReasonCodeRoundTrip, Preserved) {
  const Crl crl = make_crl({{Bytes{0x42}, kNow, GetParam()}});
  auto parsed = Crl::parse(crl.encode_der());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().entries().size(), 1u);
  EXPECT_EQ(parsed.value().entries()[0].reason, GetParam());
  EXPECT_STRNE(to_string(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(
    AllReasons, ReasonCodeRoundTrip,
    ::testing::Values(ReasonCode::kUnspecified, ReasonCode::kKeyCompromise,
                      ReasonCode::kCaCompromise,
                      ReasonCode::kAffiliationChanged, ReasonCode::kSuperseded,
                      ReasonCode::kCessationOfOperation,
                      ReasonCode::kCertificateHold, ReasonCode::kRemoveFromCrl,
                      ReasonCode::kPrivilegeWithdrawn,
                      ReasonCode::kAaCompromise));

}  // namespace
}  // namespace mustaple::crl
