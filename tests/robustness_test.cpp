// Parser robustness properties. The measurement client's whole §5.3
// classification rests on parsers that NEVER crash on hostile bytes — they
// must classify. These tests throw random buffers, truncations, and byte
// mutations at every parser in the wire-format stack.
#include <gtest/gtest.h>

#include "ca/authority.hpp"
#include "crl/crl.hpp"
#include "net/http.hpp"
#include "ocsp/request.hpp"
#include "ocsp/response.hpp"
#include "util/base64.hpp"
#include "x509/certificate.hpp"

namespace mustaple {
namespace {

using util::Bytes;
using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 1);

struct Artifacts {
  util::Rng rng{1234};
  crypto::KeyPair key = crypto::KeyPair::generate_sim(rng);
  x509::Certificate cert;
  crl::Crl crl;
  ocsp::OcspResponse response;
  Bytes request_der;

  Artifacts() {
    cert = x509::CertificateBuilder()
               .serial_number(42)
               .subject(x509::DistinguishedName{"fuzz.example", "", ""})
               .issuer(x509::DistinguishedName{"Fuzz CA", "F", "US"})
               .validity(kNow - Duration::days(1), kNow + Duration::days(1))
               .public_key(key.public_key())
               .add_ocsp_url("http://ocsp.fuzz.example/")
               .must_staple(true)
               .sign(key);
    crl::CrlBuilder crl_builder;
    crl_builder.issuer(x509::DistinguishedName{"Fuzz CA", "F", "US"})
        .this_update(kNow)
        .next_update(kNow + Duration::days(7))
        .add_entry({{0x11, 0x22}, kNow, crl::ReasonCode::kKeyCompromise});
    crl = crl_builder.sign(key);
    ocsp::SingleResponse single;
    single.cert_id.issuer_name_hash.assign(20, 0xaa);
    single.cert_id.issuer_key_hash.assign(20, 0xbb);
    single.cert_id.serial = {0x42};
    single.status = ocsp::CertStatus::kGood;
    single.this_update = kNow;
    single.next_update = kNow + Duration::days(7);
    response = ocsp::OcspResponseBuilder()
                   .produced_at(kNow)
                   .add_single(single)
                   .sign(key);
    ocsp::CertId id = single.cert_id;
    request_der = ocsp::OcspRequest::single(id).encode_der();
  }
};

Artifacts& artifacts() {
  static Artifacts a;
  return a;
}

/// Feeds a buffer to every parser; the only acceptable outcomes are a
/// successful parse or an error Result — no exceptions, no crashes.
void exercise_all_parsers(const Bytes& data) {
  EXPECT_NO_THROW({
    (void)x509::Certificate::parse(data);
    (void)crl::Crl::parse(data);
    (void)ocsp::OcspResponse::parse(data);
    (void)ocsp::OcspRequest::parse(data);
    (void)net::HttpRequest::parse(data);
    (void)net::HttpResponse::parse(data);
    (void)asn1::Oid::decode_content(data);
    (void)crypto::PublicKey::decode(data);
    (void)util::base64_decode(util::text_of(data));
  });
}

// ------------------------------------------------------- random-byte fuzz --

class RandomBytesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytesFuzz, NoParserCrashes) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    Bytes data(rng.uniform(512));
    rng.fill(data.data(), data.size());
    exercise_all_parsers(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzz,
                         ::testing::Range<std::uint64_t>(0, 16));

// DER-shaped fuzz: buffers that START like plausible TLV to reach deeper
// parser states.
class DerShapedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DerShapedFuzz, NoParserCrashes) {
  util::Rng rng(GetParam() * 31 + 7);
  static constexpr std::uint8_t kTags[] = {0x30, 0x31, 0x02, 0x04, 0x06,
                                           0x03, 0x05, 0xa0, 0xa3, 0x17,
                                           0x18, 0x0a, 0x01};
  for (int round = 0; round < 50; ++round) {
    Bytes data;
    const std::size_t chunks = 1 + rng.uniform(6);
    for (std::size_t c = 0; c < chunks; ++c) {
      data.push_back(kTags[rng.uniform(sizeof(kTags))]);
      const std::size_t len = rng.uniform(40);
      data.push_back(static_cast<std::uint8_t>(len));
      for (std::size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
    exercise_all_parsers(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerShapedFuzz,
                         ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------- truncation sweep --

TEST(TruncationSweep, CertificateNeverCrashes) {
  const Bytes der = artifacts().cert.encode_der();
  for (std::size_t cut = 0; cut < der.size(); ++cut) {
    Bytes truncated(der.begin(), der.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_NO_THROW({
      auto result = x509::Certificate::parse(truncated);
      EXPECT_FALSE(result.ok()) << "truncated at " << cut;
    });
  }
}

TEST(TruncationSweep, OcspResponseNeverCrashes) {
  const Bytes der = artifacts().response.encode_der();
  for (std::size_t cut = 0; cut < der.size(); ++cut) {
    Bytes truncated(der.begin(), der.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_NO_THROW({
      auto result = ocsp::OcspResponse::parse(truncated);
      EXPECT_FALSE(result.ok()) << "truncated at " << cut;
    });
  }
}

TEST(TruncationSweep, CrlNeverCrashes) {
  const Bytes der = artifacts().crl.encode_der();
  for (std::size_t cut = 0; cut < der.size(); cut += 3) {
    Bytes truncated(der.begin(), der.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_NO_THROW({
      auto result = crl::Crl::parse(truncated);
      EXPECT_FALSE(result.ok());
    });
  }
}

TEST(TruncationSweep, OcspRequestNeverCrashes) {
  const Bytes& der = artifacts().request_der;
  for (std::size_t cut = 0; cut < der.size(); ++cut) {
    Bytes truncated(der.begin(), der.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_NO_THROW({
      auto result = ocsp::OcspRequest::parse(truncated);
      EXPECT_FALSE(result.ok());
    });
  }
}

// -------------------------------------------------------- mutation (bit-flip) --

TEST(MutationSweep, CertificateFlipNeverForgesAuthenticatedContent) {
  // Property: any single-byte corruption either fails to parse, or fails
  // signature verification, or — when it only touched the UNAUTHENTICATED
  // envelope (X.509's signature covers the TBS alone) — left the
  // authenticated TBS bytes untouched. No flip may alter signed content
  // and still verify.
  const Bytes original = artifacts().cert.encode_der();
  const Bytes& original_tbs = artifacts().cert.tbs_der();
  const crypto::PublicKey& key = artifacts().key.public_key();
  std::size_t envelope_malleable = 0;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    Bytes mutated = original;
    mutated[pos] ^= 0x01;
    EXPECT_NO_THROW({
      auto parsed = x509::Certificate::parse(mutated);
      if (parsed.ok() && parsed.value().verify_signature(key)) {
        ++envelope_malleable;
        EXPECT_EQ(parsed.value().tbs_der(), original_tbs)
            << "flip at byte " << pos << " forged authenticated content";
      }
    });
  }
  // The RFC 5280 inner/outer algorithm check pins the algorithm OID, so
  // only a handful of envelope bytes (NULL params etc.) remain malleable.
  EXPECT_LT(envelope_malleable, 8u);
}

TEST(MutationSweep, OcspResponseFlipNeverForgesAuthenticatedContent) {
  const Bytes original = artifacts().response.encode_der();
  const Bytes& original_tbs = artifacts().response.tbs_der();
  const crypto::PublicKey& key = artifacts().key.public_key();
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    Bytes mutated = original;
    mutated[pos] ^= 0x01;
    EXPECT_NO_THROW({
      auto parsed = ocsp::OcspResponse::parse(mutated);
      if (parsed.ok() && parsed.value().successful() &&
          parsed.value().verify_signature(key)) {
        EXPECT_EQ(parsed.value().tbs_der(), original_tbs)
            << "flip at byte " << pos << " forged authenticated content";
      }
    });
  }
}

// -------------------------------------------------- re-encode stability --

TEST(ReencodeStability, CertificateBytesStable) {
  const Bytes der = artifacts().cert.encode_der();
  auto parsed = x509::Certificate::parse(der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().encode_der(), der);
}

TEST(ReencodeStability, CrlBytesStable) {
  const Bytes der = artifacts().crl.encode_der();
  auto parsed = crl::Crl::parse(der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().encode_der(), der);
}

TEST(ReencodeStability, OcspResponseBytesStable) {
  const Bytes der = artifacts().response.encode_der();
  auto parsed = ocsp::OcspResponse::parse(der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().encode_der(), der);
}

// ------------------------------------------------------ determinism property --

TEST(Determinism, SameSeedSameWorld) {
  // Two independently constructed CAs from identical seeds produce
  // byte-identical artifacts — the property every experiment rests on.
  util::Rng rng_a(777);
  util::Rng rng_b(777);
  ca::CertificateAuthority a("DetCA", kNow - Duration::days(100), rng_a);
  ca::CertificateAuthority b("DetCA", kNow - Duration::days(100), rng_b);
  EXPECT_EQ(a.root_cert().encode_der(), b.root_cert().encode_der());
  ca::LeafRequest request;
  request.domain = "det.example";
  request.not_before = kNow;
  const auto leaf_a = a.issue(request, rng_a);
  const auto leaf_b = b.issue(request, rng_b);
  EXPECT_EQ(leaf_a.encode_der(), leaf_b.encode_der());
}

}  // namespace
}  // namespace mustaple
