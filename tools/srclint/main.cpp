// srclint CLI. Usage:
//   srclint [--report-only] [--json <path>] <path>...
//
// Paths may be files or directories (directories recurse into
// *.hpp/*.cpp/*.h/*.cc). Exit codes: 0 clean, 1 unsuppressed findings,
// 2 usage / internal error. --report-only always exits 0/2 — used for the
// bench/ and examples/ sweeps where findings are informational.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "srclint/srclint.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace mustaple::srclint;

  bool report_only = false;
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report-only") {
      report_only = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "srclint: --json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: srclint [--report-only] [--json <path>] <path>...\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "srclint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: srclint [--report-only] [--json <path>] <path>...\n");
    return 2;
  }

  const Checker checker;
  const Report report = checker.check_paths(paths);

  const std::string text = report.render_text();
  std::fwrite(text.data(), 1, text.size(), stdout);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "srclint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << report.render_json();
  }

  if (report_only) return 0;
  return report.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "srclint: internal error: %s\n", e.what());
    return 2;
  }
}
