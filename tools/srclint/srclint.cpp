#include "srclint/srclint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace mustaple::srclint {

namespace {

// ---------------------------------------------------------------------------
// Text utilities
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Substring match where the character BEFORE the match must not extend an
/// identifier ("rand(" must not match inside "srand(").
bool contains_token(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident_char(code[pos - 1])) return true;
    ++pos;
  }
  return false;
}

bool starts_with_word(const std::string& s, const std::string& word) {
  if (s.rfind(word, 0) != 0) return false;
  return s.size() == word.size() || !is_ident_char(s[word.size()]);
}

/// Strips string/char literals and comments from one physical line, given
/// (and updating) whether the line starts inside a /* block comment.
/// Findings only ever match real code this way — a comment SAYING
/// "std::mutex" is not a violation.
std::string strip_line(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out += quote;  // literal contents removed, delimiters kept
      continue;
    }
    out += c;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule tables
// ---------------------------------------------------------------------------

const char* kDesign7 = "DESIGN.md §7 (deterministic parallel campaigns)";
const char* kDesign9 = "DESIGN.md §9 (BytesView lifetime rules)";
const char* kStaticDoc = "docs/STATIC_ANALYSIS.md";

const std::vector<std::string>& wallclock_tokens() {
  static const std::vector<std::string> kTokens = {
      "std::chrono::system_clock", "std::chrono::steady_clock",
      "system_clock::now",         "steady_clock::now",
      "high_resolution_clock",     "clock_gettime",
      "gettimeofday",              "gmtime",
      "localtime",
  };
  return kTokens;
}

const std::vector<std::string>& random_tokens() {
  static const std::vector<std::string> kTokens = {
      "std::random_device",
      "random_device",
      "srand(",
      "rand(",
  };
  return kTokens;
}

const std::vector<std::string>& obs_singleton_tokens() {
  static const std::vector<std::string> kTokens = {
      "obs::default_registry(",  "obs::default_logger(",
      "obs::default_trace_log(", "obs::default_profiler(",
      "obs::default_flight_recorder(",
  };
  return kTokens;
}

const std::vector<std::string>& raw_mutex_tokens() {
  static const std::vector<std::string> kTokens = {
      "std::mutex",       "std::condition_variable",
      "std::lock_guard",  "std::unique_lock",
      "std::scoped_lock", "std::shared_mutex",
      "std::recursive_mutex",
  };
  return kTokens;
}

const std::vector<std::string>& temporary_suffixes() {
  static const std::vector<std::string> kSuffixes = {
      ".encode()", ".to_der()", ".to_bytes()", ".str()", ".render_json()",
  };
  return kSuffixes;
}

/// Member decls exempt from sl_unguarded_mutex_field: their own
/// synchronization (atomics), the lock machinery itself, thread handles,
/// compile-time members, and anything already annotated.
bool mutex_field_exempt(const std::string& decl) {
  static const std::vector<std::string> kExempt = {
      "MUSTAPLE_GUARDED_BY",  "MUSTAPLE_PT_GUARDED_BY",
      "std::atomic",          "CondVar",
      "std::thread",          "Mutex",
      "constexpr ",           "= delete",
      "= default",
  };
  if (starts_with_word(decl, "static")) return true;
  for (const std::string& token : kExempt) {
    if (decl.find(token) != std::string::npos) return true;
  }
  // A '(' outside the annotation macros means a function or functional-type
  // declaration — out of scope for the field heuristic.
  if (decl.find('(') != std::string::npos) return true;
  return false;
}

bool control_statement(const std::string& decl) {
  static const std::vector<std::string> kKeywords = {
      "return", "if",     "for",     "while",  "do",     "switch",
      "case",   "break",  "continue", "else",  "delete", "goto",
      "using",  "typedef", "friend",  "template", "static_assert", "public",
      "private", "protected",
  };
  for (const std::string& kw : kKeywords) {
    if (starts_with_word(decl, kw)) return true;
  }
  return false;
}

struct Suppression {
  std::string rule_id;
  std::string reason;
  bool malformed = false;
};

/// Parses `// SRCLINT-ALLOW(rule): reason` from a RAW line (the grammar
/// lives in comments, which strip_line removes).
bool parse_suppression(const std::string& raw, Suppression& out) {
  static const std::regex kAllow(
      R"(SRCLINT-ALLOW\(([A-Za-z0-9_]*)\)\s*(?::\s*(.*))?)");
  std::smatch m;
  if (!std::regex_search(raw, m, kAllow)) return false;
  out.rule_id = m[1].str();
  out.reason = m[2].matched ? trim(m[2].str()) : "";
  bool known = false;
  for (const RuleInfo& rule : builtin_rules()) {
    if (rule.id == out.rule_id) known = true;
  }
  out.malformed = !known || out.reason.empty();
  return true;
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& builtin_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"sl_wallclock_in_sim", kDesign7,
       "wall-clock read outside the wall-clock-legitimate allowlist",
       Severity::kError},
      {"sl_nondeterministic_random", kDesign7,
       "non-deterministic randomness (std::random_device / rand / srand)",
       Severity::kError},
      {"sl_obs_ungated", kDesign7,
       "direct obs::default_*() call outside #if MUSTAPLE_OBS_ENABLED",
       Severity::kError},
      {"sl_view_binds_temporary", kDesign9,
       "BytesView/TlvView initialized from an rvalue-returning call",
       Severity::kError},
      {"sl_unguarded_mutex_field", kStaticDoc,
       "member after a util::Mutex without MUSTAPLE_GUARDED_BY",
       Severity::kError},
      {"sl_raw_std_mutex", kStaticDoc,
       "raw std::mutex family outside util/mutex.hpp", Severity::kError},
      {"sl_suppression", kStaticDoc,
       "malformed SRCLINT-ALLOW (unknown rule id or missing reason)",
       Severity::kError},
      {"sl_io", kStaticDoc, "file could not be read", Severity::kError},
  };
  return kRules;
}

Options default_options() {
  Options options;
  // Wall-clock-legitimate files (justifications in docs/STATIC_ANALYSIS.md):
  // the obs pillar measures real process behaviour by design; the event
  // loop times real dispatch cost into obs histograms; the socket layer
  // needs real deadlines; bench/examples run on the wall clock by nature.
  options.allowlist["sl_wallclock_in_sim"] = {
      "src/obs/",  "src/net/event_loop.cpp", "src/net/socket_server.cpp",
      "bench/",    "examples/",              "tools/",
  };
  // The obs implementation is its own gate.
  options.allowlist["sl_obs_ungated"] = {"src/obs/", "bench/", "examples/",
                                         "tools/"};
  // The annotated wrapper is the one sanctioned home of std::mutex.
  options.allowlist["sl_raw_std_mutex"] = {"src/util/mutex.hpp", "tools/"};
  return options;
}

void Report::merge(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  suppressed.insert(suppressed.end(), other.suppressed.begin(),
                    other.suppressed.end());
  files_scanned += other.files_scanned;
}

std::map<std::string, std::size_t> Report::by_rule() const {
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : findings) ++counts[f.rule_id];
  return counts;
}

std::string Report::render_json() const {
  const auto render_finding = [](const Finding& f) {
    std::ostringstream out;
    out << "{\"rule\":\"" << json_escape(f.rule_id) << "\",\"severity\":\""
        << to_string(f.severity) << "\",\"file\":\"" << json_escape(f.file)
        << "\",\"line\":" << f.line << ",\"message\":\""
        << json_escape(f.message) << "\"";
    if (!f.suppress_reason.empty()) {
      out << ",\"suppress_reason\":\"" << json_escape(f.suppress_reason)
          << "\"";
    }
    out << "}";
    return out.str();
  };

  std::ostringstream out;
  out << "{\"schema\":\"mustaple-srclint/1\",\"files_scanned\":"
      << files_scanned << ",\"counts\":{\"findings\":" << findings.size()
      << ",\"suppressed\":" << suppressed.size() << "},\"by_rule\":{";
  bool first = true;
  for (const auto& [rule, count] : by_rule()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(rule) << "\":" << count;
  }
  out << "},\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i) out << ",";
    out << render_finding(findings[i]);
  }
  out << "],\"suppressed\":[";
  for (std::size_t i = 0; i < suppressed.size(); ++i) {
    if (i) out << ",";
    out << render_finding(suppressed[i]);
  }
  out << "]}\n";
  return out.str();
}

std::string Report::render_text() const {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule_id << "] " << f.message
        << "\n";
  }
  out << findings.size() << " finding(s), " << suppressed.size()
      << " suppressed, " << files_scanned << " file(s) scanned\n";
  return out.str();
}

Checker::Checker(Options options) : options_(std::move(options)) {}

bool Checker::allowed(const std::string& rule_id,
                      const std::string& path) const {
  const auto it = options_.allowlist.find(rule_id);
  if (it == options_.allowlist.end()) return false;
  for (const std::string& entry : it->second) {
    if (path.find(entry) != std::string::npos) return true;
  }
  return false;
}

Report Checker::check_text(const std::string& path,
                           const std::string& content) const {
  Report report;
  report.files_scanned = 1;

  const std::vector<std::string> raw = split_lines(content);

  // Pass 1: stripped code per line, OBS-gating depth per line, and the
  // suppression table.
  std::vector<std::string> code(raw.size());
  std::vector<bool> obs_gated(raw.size(), false);
  std::map<std::size_t, Suppression> allows;  // line (1-based) -> allow
  {
    bool in_block_comment = false;
    // Preprocessor stack: 1 = inside #if MUSTAPLE_OBS_ENABLED, -1 = inside
    // its #else (or #if !MUSTAPLE_OBS_ENABLED), 0 = unrelated conditional.
    std::vector<int> pp;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      code[i] = strip_line(raw[i], in_block_comment);

      Suppression allow;
      if (parse_suppression(raw[i], allow)) {
        allows[i + 1] = allow;
        if (allow.malformed) {
          Finding f;
          f.rule_id = "sl_suppression";
          f.severity = Severity::kError;
          f.file = path;
          f.line = i + 1;
          f.message = "malformed SRCLINT-ALLOW: " +
                      (allow.rule_id.empty()
                           ? std::string("missing rule id")
                           : allow.reason.empty()
                                 ? "missing reason for '" + allow.rule_id + "'"
                                 : "unknown rule '" + allow.rule_id + "'");
          report.findings.push_back(std::move(f));
        }
      }

      const std::string t = trim(code[i]);
      if (starts_with_word(t, "#if")) {
        int state = 0;
        if (t.find("MUSTAPLE_OBS_ENABLED") != std::string::npos) {
          state = t.find("!MUSTAPLE_OBS_ENABLED") != std::string::npos ? -1 : 1;
        }
        pp.push_back(state);
      } else if (starts_with_word(t, "#elif")) {
        if (!pp.empty()) pp.back() = 0;
      } else if (starts_with_word(t, "#else")) {
        if (!pp.empty()) pp.back() = -pp.back();
      } else if (starts_with_word(t, "#endif")) {
        if (!pp.empty()) pp.pop_back();
      }
      obs_gated[i] = std::any_of(pp.begin(), pp.end(),
                                 [](int s) { return s == 1; });
    }
  }

  std::vector<Finding> candidates;
  const auto add = [&](const char* rule_id, std::size_t line,
                       std::string message) {
    if (allowed(rule_id, path)) return;
    Finding f;
    f.rule_id = rule_id;
    f.severity = Severity::kError;
    f.file = path;
    f.line = line;
    f.message = std::move(message);
    candidates.push_back(std::move(f));
  };

  // Pass 2: per-physical-line token rules.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& c = code[i];
    if (c.empty()) continue;
    for (const std::string& token : wallclock_tokens()) {
      if (contains_token(c, token)) {
        add("sl_wallclock_in_sim", i + 1,
            "wall-clock read '" + token +
                "' — sim paths must use util::SimTime (allowlist the file if "
                "wall time is the point)");
        break;
      }
    }
    for (const std::string& token : random_tokens()) {
      if (contains_token(c, token)) {
        add("sl_nondeterministic_random", i + 1,
            "non-deterministic source '" + token +
                "' — derive randomness from util::Rng seeds");
        break;
      }
    }
    if (!obs_gated[i]) {
      for (const std::string& token : obs_singleton_tokens()) {
        if (contains_token(c, token)) {
          add("sl_obs_ungated", i + 1,
              "direct " + token.substr(0, token.size() - 1) +
                  "() call outside #if MUSTAPLE_OBS_ENABLED — use the "
                  "MUSTAPLE_* macros or gate the block");
          break;
        }
      }
    }
    for (const std::string& token : raw_mutex_tokens()) {
      if (contains_token(c, token)) {
        add("sl_raw_std_mutex", i + 1,
            "'" + token +
                "' outside util/mutex.hpp — use util::Mutex/MutexLock so "
                "thread-safety analysis sees the lock");
        break;
      }
    }
  }

  // Pass 3: logical-line rules (joined until ';', '{', '}' or label so a
  // multi-line declaration reads as one unit).
  {
    static const std::regex kMutexDecl(
        R"((^|[^\w<:])(util::)?Mutex\s+\w+\s*;)");
    static const std::regex kViewDecl(R"((^|[^\w])(BytesView|TlvView)\s)");
    std::string logical;
    std::size_t logical_start = 0;
    std::size_t guard_window = 0;  // logical lines left to inspect
    int guard_nest = 0;  // depth inside a nested {} opened within the window
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const std::string t = trim(code[i]);
      if (t.empty() || t[0] == '#') continue;
      if (logical.empty()) logical_start = i + 1;
      logical += logical.empty() ? t : " " + t;
      const char last = logical.back();
      if (last != ';' && last != '{' && last != '}' && last != ':') continue;
      const std::string decl = logical;
      const std::size_t line = logical_start;
      logical.clear();

      // sl_view_binds_temporary: a view declared on this logical line and
      // initialized from a call returning an owning temporary.
      if (std::regex_search(decl, kViewDecl)) {
        for (const std::string& suffix : temporary_suffixes()) {
          if (decl.find(suffix) != std::string::npos) {
            add("sl_view_binds_temporary", line,
                "view bound to temporary from '" + suffix +
                    "' — store the owning value first (DESIGN.md §9)");
            break;
          }
        }
      }

      // sl_unguarded_mutex_field: open a window after a mutex member decl.
      // A nested aggregate ({...} opened inside the window, e.g. a member
      // struct definition) is skipped wholesale — its fields are not
      // mutex-adjacent state of the enclosing class.
      if (guard_window > 0) {
        --guard_window;
        if (guard_nest > 0) {
          if (decl.back() == '{') ++guard_nest;
          if (decl.find('}') != std::string::npos) --guard_nest;
        } else if (decl.back() == '{') {
          ++guard_nest;
        } else if (decl.find('}') != std::string::npos ||
                   decl.find("public:") != std::string::npos ||
                   decl.find("private:") != std::string::npos ||
                   decl.find("protected:") != std::string::npos) {
          guard_window = 0;
          guard_nest = 0;
        } else if (decl.back() == ';' && !control_statement(decl) &&
                   !mutex_field_exempt(decl)) {
          add("sl_unguarded_mutex_field", line,
              "member declared after a util::Mutex without "
              "MUSTAPLE_GUARDED_BY — annotate it or SRCLINT-ALLOW with the "
              "ownership story");
        }
      }
      if (std::regex_search(decl, kMutexDecl)) guard_window = 40;
    }
  }

  // Apply suppressions: an allow on the same line or the line above eats a
  // matching candidate.
  for (Finding& f : candidates) {
    const Suppression* allow = nullptr;
    for (std::size_t line : {f.line, f.line - 1}) {
      const auto it = allows.find(line);
      if (it != allows.end() && !it->second.malformed &&
          it->second.rule_id == f.rule_id) {
        allow = &it->second;
        break;
      }
    }
    if (allow != nullptr) {
      f.suppress_reason = allow->reason;
      report.suppressed.push_back(std::move(f));
    } else {
      report.findings.push_back(std::move(f));
    }
  }

  // Deterministic order: by file (single here), line, rule.
  const auto order = [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule_id < b.rule_id;
  };
  std::sort(report.findings.begin(), report.findings.end(), order);
  std::sort(report.suppressed.begin(), report.suppressed.end(), order);
  return report;
}

Report Checker::check_file(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Report report;
    Finding f;
    f.rule_id = "sl_io";
    f.severity = Severity::kError;
    f.file = path;
    f.line = 0;
    f.message = "cannot read file";
    report.findings.push_back(std::move(f));
    return report;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return check_text(path, buffer.str());
}

Report Checker::check_paths(const std::vector<std::string>& paths) const {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(path);  // explicit files are scanned regardless of ext
    }
  }
  std::sort(files.begin(), files.end());
  Report report;
  for (const std::string& file : files) report.merge(check_file(file));
  return report;
}

}  // namespace mustaple::srclint
