// srclint: a repo-invariant source checker for the mustaple tree.
//
// mustaple::lint (src/lint) lints the ARTIFACTS the simulator produces —
// certificates, CRLs, OCSP responses — against RFC/BR citations. srclint
// applies the same Rule/Finding/Report shapes to the SOURCE CODE itself,
// scanning line-by-line for the repo-specific invariants that back the
// determinism contract (DESIGN.md §7) and the view-lifetime rules
// (DESIGN.md §9):
//
//   sl_wallclock_in_sim      wall-clock reads outside the allowlist of
//                            wall-clock-legitimate files
//   sl_nondeterministic_random
//                            std::random_device / rand() / srand()
//   sl_obs_ungated           direct obs::default_*() singleton calls in
//                            non-obs code outside #if MUSTAPLE_OBS_ENABLED
//   sl_view_binds_temporary  BytesView/TlvView initialized from an
//                            rvalue-returning call (dangling view)
//   sl_unguarded_mutex_field members declared after a util::Mutex without
//                            MUSTAPLE_GUARDED_BY (or an exempt type)
//   sl_raw_std_mutex         std::mutex / std::condition_variable /
//                            std::lock_guard family outside util/mutex.hpp
//   sl_suppression           malformed SRCLINT-ALLOW (unknown rule id or
//                            missing reason)
//
// Suppression grammar (same line, or the line immediately above):
//   // SRCLINT-ALLOW(rule_id): reason text
// The reason is mandatory; suppressions are carried into the JSON report
// so an allow never disappears silently. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mustaple::srclint {

enum class Severity : std::uint8_t { kInfo, kWarn, kError };

const char* to_string(Severity severity);

/// Static description of one rule (mirrors mustaple::lint::RuleInfo; the
/// citation points at the repo document that makes the invariant binding).
struct RuleInfo {
  std::string id;
  std::string citation;
  std::string description;
  Severity severity = Severity::kError;
};

/// One rule firing at one source line (mirrors mustaple::lint::Finding).
struct Finding {
  std::string rule_id;
  Severity severity = Severity::kError;
  std::string file;  ///< path as given to the scanner
  std::size_t line = 0;
  std::string message;
  /// Set when a SRCLINT-ALLOW matched: the finding moves to the report's
  /// suppressed list instead of failing the run.
  std::string suppress_reason;
};

/// Scan results over any number of files (mirrors mustaple::lint::LintReport).
struct Report {
  std::vector<Finding> findings;    ///< unsuppressed — these fail the gate
  std::vector<Finding> suppressed;  ///< SRCLINT-ALLOW'd, kept for the record
  std::size_t files_scanned = 0;

  void merge(const Report& other);
  std::map<std::string, std::size_t> by_rule() const;
  /// {"schema":"mustaple-srclint/1",...} single document, newline-terminated.
  std::string render_json() const;
  /// Human-readable one-line-per-finding text (file:line: [rule] message).
  std::string render_text() const;
};

/// Per-rule file allowlists: a file is exempt from a rule when its path
/// contains any of the rule's entries. Entries are documented substrings
/// ("src/obs/resource.", "bench/"), not globs.
struct Options {
  std::map<std::string, std::vector<std::string>> allowlist;
};

/// The allowlist the repo gates CI with (see docs/STATIC_ANALYSIS.md for
/// the per-file justifications).
Options default_options();

/// All built-in rules, in report order.
const std::vector<RuleInfo>& builtin_rules();

class Checker {
 public:
  explicit Checker(Options options = default_options());

  /// Scans one in-memory buffer (the unit fixtures exercise this directly).
  Report check_text(const std::string& path, const std::string& content) const;

  /// Reads and scans one file; a read failure produces an sl_io error
  /// finding rather than a crash.
  Report check_file(const std::string& path) const;

  /// Files plus directories (recursing into *.hpp/*.cpp), merged.
  Report check_paths(const std::vector<std::string>& paths) const;

 private:
  bool allowed(const std::string& rule_id, const std::string& path) const;

  Options options_;
};

}  // namespace mustaple::srclint
