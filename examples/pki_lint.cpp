// pki_lint: batch lint over the default generated ecosystem — the zlint-style
// counterpart to the scan benches. Three passes:
//
//   1. Certificates: every scan-target leaf plus each CA's root and
//      intermediate, batch-linted at 1 and 4 threads (reports must be
//      bit-identical), with the headline Must-Staple-without-OCSP-URL count
//      cross-checked against a direct recount of the same population.
//   2. CRL vs OCSP: the Table-1 consistency audit (same knobs as the
//      table1_discrepancies bench), re-deriving the discrepancy matrix from
//      the audit's e_xcheck_* lint findings and asserting it equals the
//      audit's own rows.
//   3. Scan campaign: a short hourly campaign whose per-probe lint counts
//      must equal the scanner's Fig-5 accounting exactly.
//
// Writes lint_report.json / lint_report.csv to the output directory and
// exits nonzero on any FATAL finding or any cross-check mismatch — CI runs
// this as the seed-ecosystem lint gate.
//
// Usage: pki_lint [output_dir]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "lint/lint.hpp"
#include "measurement/consistency.hpp"
#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "util/ascii_chart.hpp"

using namespace mustaple;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    ++failures;
    std::printf("  MISMATCH: %s\n", what);
  }
}

/// The bench suite's standard scaled-down paper campaign (bench/common.hpp);
/// replicated here so the lint gate audits the same world the figures use.
measurement::EcosystemConfig paper_ecosystem() {
  measurement::EcosystemConfig config;
  config.seed = 2018;
  config.responder_count = 536;
  config.alexa_domains = 100'000;
  config.certs_per_responder = 3;
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 9, 4);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const lint::RuleRegistry& registry = lint::RuleRegistry::builtin();

  std::printf("pki_lint: %zu rules loaded\n", registry.size());
  {
    std::vector<std::vector<std::string>> rows;
    for (const lint::Rule& rule : registry.rules()) {
      rows.push_back({rule.info.id, lint::to_string(rule.info.severity),
                      lint::to_string(rule.info.kind), rule.info.citation});
    }
    std::printf("%s\n", util::render_table(
                            {"rule", "severity", "artifact", "citation"}, rows)
                            .c_str());
  }

  const measurement::EcosystemConfig config = paper_ecosystem();
  lint::LintReport combined(100'000);

  // ---- pass 1: certificates --------------------------------------------
  std::printf("[1/3] certificate lint over the generated ecosystem\n");
  {
    net::EventLoop loop(config.campaign_start - util::Duration::days(1));
    measurement::Ecosystem ecosystem(config, loop);

    std::vector<lint::Artifact> artifacts;
    std::size_t unusable_direct = 0;
    for (const measurement::ScanTarget& target : ecosystem.scan_targets()) {
      artifacts.push_back(lint::Artifact::deferred(
          lint::ArtifactKind::kCertificate, target.cert.serial_hex(),
          target.cert.encode_der()));
      const x509::Extensions& ext = target.cert.extensions();
      if (ext.must_staple && !ext.supports_ocsp()) ++unusable_direct;
    }
    for (std::size_t i = 0; i < ecosystem.authority_count(); ++i) {
      const ca::CertificateAuthority& authority = ecosystem.authority(i);
      artifacts.push_back(lint::Artifact::deferred(
          lint::ArtifactKind::kCertificate,
          "root:" + authority.root_cert().serial_hex(),
          authority.root_cert().encode_der()));
      artifacts.push_back(lint::Artifact::deferred(
          lint::ArtifactKind::kCertificate,
          "int:" + authority.intermediate_cert().serial_hex(),
          authority.intermediate_cert().encode_der()));
    }

    std::vector<lint::Artifact> artifacts_mt = artifacts;
    const lint::LintReport single = lint::run_batch(registry, artifacts, 1);
    const lint::LintReport quad = lint::run_batch(registry, artifacts_mt, 4);
    check(single.render_json() == quad.render_json(),
          "cert lint report differs between 1 and 4 threads");
    check(single.count("e_cert_must_staple_without_ocsp_url") ==
              unusable_direct,
          "lint's Must-Staple-without-OCSP-URL count != direct recount");
    std::printf(
        "  %s\n  must-staple-without-ocsp-url: lint=%llu direct=%zu "
        "[paper §4: 96 of 98,621 Must-Staple certs are unusable]\n",
        single.summary().c_str(),
        static_cast<unsigned long long>(
            single.count("e_cert_must_staple_without_ocsp_url")),
        unusable_direct);
    combined.merge(single);
  }

  // ---- pass 2: CRL vs OCSP cross-check (Table 1) -----------------------
  std::printf("[2/3] CRL/OCSP cross-check audit (table1_discrepancies knobs)\n");
  {
    net::EventLoop loop(config.campaign_start - util::Duration::days(1));
    measurement::Ecosystem ecosystem(config, loop);
    measurement::ConsistencyConfig audit_config;
    audit_config.revoked_population = 7283;
    util::Rng rng(config.seed ^ 0x7ab1eULL);
    measurement::ConsistencyAudit audit(ecosystem, audit_config);
    const measurement::ConsistencyReport report = audit.run(rng);

    check(report.lint.dropped() == 0,
          "audit lint findings overflowed capacity (raise "
          "ConsistencyConfig::lint_finding_capacity)");

    // Re-derive the Table-1 matrix from the findings alone.
    struct Cell {
      std::size_t good = 0;
      std::size_t unknown = 0;
    };
    std::map<std::string, Cell> matrix;
    for (const lint::Finding& finding : report.lint.findings()) {
      if (finding.rule_id == "e_xcheck_crl_revoked_ocsp_good") {
        ++matrix[finding.artifact].good;
      } else if (finding.rule_id == "e_xcheck_crl_revoked_ocsp_unknown") {
        ++matrix[finding.artifact].unknown;
      }
    }
    check(matrix.size() == report.table1.size(),
          "lint-derived discrepancy matrix row count != audit's Table 1");
    std::vector<std::vector<std::string>> rows;
    for (const measurement::DiscrepancyRow& row : report.table1) {
      const auto it = matrix.find(row.ocsp_url);
      const Cell cell = it == matrix.end() ? Cell{} : it->second;
      check(cell.good == row.answered_good &&
                cell.unknown == row.answered_unknown,
            "lint-derived good/unknown counts != audit's Table 1 row");
      rows.push_back({row.ocsp_url, std::to_string(cell.unknown),
                      std::to_string(cell.good),
                      std::to_string(row.answered_revoked)});
    }
    std::printf("%s", util::render_table(
                          {"OCSP URL (from lint findings)", "Unknown", "Good",
                           "Revoked (audit)"},
                          rows)
                          .c_str());
    check(report.lint.count("w_xcheck_revocation_time_differs") ==
              report.time_differing,
          "lint revocation-time-differs count != audit's");
    check(report.lint.count("w_xcheck_reason_code_differs") ==
              report.reason_differing,
          "lint reason-code-differs count != audit's");
    std::printf(
        "  %zu discrepant pairs; time-differs lint=%llu audit=%zu; "
        "reason-differs lint=%llu audit=%zu\n",
        report.table1.size(),
        static_cast<unsigned long long>(
            report.lint.count("w_xcheck_revocation_time_differs")),
        report.time_differing,
        static_cast<unsigned long long>(
            report.lint.count("w_xcheck_reason_code_differs")),
        report.reason_differing);
    combined.merge(report.lint);
  }

  // ---- pass 3: scan campaign, lint vs Fig-5 accounting -----------------
  std::printf("[3/3] scan-campaign lint vs the scanner's Fig-5 classes\n");
  {
    measurement::EcosystemConfig scan_world = paper_ecosystem();
    scan_world.certs_per_responder = 1;
    net::EventLoop loop(scan_world.campaign_start - util::Duration::days(1));
    measurement::Ecosystem ecosystem(scan_world, loop);
    measurement::ScanConfig scan;
    scan.interval = util::Duration::hours(3);
    scan.max_steps = 40;  // covers the Apr 29 malformed-responder spike
    measurement::HourlyScanner scanner(ecosystem, scan);
    scanner.run();

    std::size_t unparseable = 0;
    std::size_t serial_mismatch = 0;
    std::size_t bad_signature = 0;
    for (const measurement::StepTotals& step : scanner.steps()) {
      unparseable += step.unparseable;
      serial_mismatch += step.serial_mismatch;
      bad_signature += step.bad_signature;
    }
    const lint::LintReport& lint = scanner.lint_report();
    check(lint.count("e_ocsp_unparseable") == unparseable,
          "lint unparseable count != scanner's ASN.1-unparseable total");
    check(lint.count("e_ocsp_serial_mismatch") == serial_mismatch,
          "lint serial-mismatch count != scanner's total");
    check(lint.count("e_ocsp_bad_signature") == bad_signature,
          "lint bad-signature count != scanner's total");
    std::printf(
        "  %s\n  fig5 classes: unparseable lint=%llu scan=%zu | "
        "serial lint=%llu scan=%zu | signature lint=%llu scan=%zu\n",
        lint.summary().c_str(),
        static_cast<unsigned long long>(lint.count("e_ocsp_unparseable")),
        unparseable,
        static_cast<unsigned long long>(lint.count("e_ocsp_serial_mismatch")),
        serial_mismatch,
        static_cast<unsigned long long>(lint.count("e_ocsp_bad_signature")),
        bad_signature);
    combined.merge(lint);
  }

  check(analysis::write_export(out_dir, "lint_report.json",
                               combined.render_json()),
        "could not write lint_report.json (does the output dir exist?)");
  check(analysis::write_export(out_dir, "lint_report.csv",
                               combined.render_csv(registry)),
        "could not write lint_report.csv (does the output dir exist?)");
  std::printf("\ncombined: %s\n", combined.summary().c_str());
  std::printf("wrote %s/lint_report.json and lint_report.csv\n",
              out_dir.c_str());

  if (combined.has_fatal()) {
    std::printf("FATAL findings present — the seed ecosystem must lint "
                "fatal-clean\n");
    return 2;
  }
  if (failures > 0) {
    std::printf("%d cross-check mismatches\n", failures);
    return 1;
  }
  std::printf("all cross-checks passed; no fatal findings\n");
  return 0;
}
