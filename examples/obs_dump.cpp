// Observability tour: run a scaled-down readiness study with the full obs
// stack wired up — structured JSONL event log (sim-time AND wall-time on
// every record), Prometheus-text + JSON metrics dumps, the campaign
// timeline (windowed sim-time series) as CSV/JSON, a Perfetto-loadable
// Chrome trace, the annotation profiler's phase tree (JSON + collapsed
// stacks for flamegraph.pl / speedscope), the resource-monitor timeline
// (RSS, CPU, per-subsystem allocation), and the span/resource/profile
// summaries appended to the readiness report.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/obs_dump [outdir]
// Writes <outdir>/study.jsonl, <outdir>/metrics.prom, <outdir>/metrics.json,
// <outdir>/timeline.csv, <outdir>/timeline.json, <outdir>/trace.json,
// <outdir>/profile.json, <outdir>/profile.folded, <outdir>/resources.csv,
// <outdir>/resources.json (outdir defaults to "."). Open trace.json at
// ui.perfetto.dev; feed profile.folded to flamegraph.pl.
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/study.hpp"
#include "obs/obs.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
#if !MUSTAPLE_OBS_ENABLED
  // With the obs layer compiled out the study still runs — every macro and
  // artifact write compiles to nothing. Exit 0 so CI can assert exactly that.
  (void)argc;
  (void)argv;
  core::StudyConfig config;
  config.ecosystem.seed = 7;
  config.ecosystem.responder_count = 120;
  config.ecosystem.alexa_domains = 10'000;
  config.ecosystem.certs_per_responder = 1;
  config.ecosystem.campaign_end =
      config.ecosystem.campaign_start + util::Duration::days(14);
  core::MustStapleStudy study(config);
  const core::ReadinessReport report = study.run();
  std::printf("%s", report.render().c_str());
  std::printf(
      "\nobs_dump was built with MUSTAPLE_OBS_OFF: the study above ran with "
      "zero instrumentation;\nrebuild with -DMUSTAPLE_OBS=ON for the logs, "
      "metrics, timeline, and trace artifacts.\n");
  return 0;
#else
  const std::string outdir = argc > 1 ? argv[1] : ".";
  const std::string jsonl_path = outdir + "/study.jsonl";

  // Wire the default logger: structured JSONL to disk, debug level so the
  // per-step scan records land too.
  obs::Logger& logger = obs::default_logger();
  logger.set_level(obs::Level::kDebug);
  auto jsonl = std::make_shared<obs::JsonlFileSink>(jsonl_path);
  if (!jsonl->ok()) {
    std::fprintf(stderr, "cannot open %s for writing\n", jsonl_path.c_str());
    return 1;
  }
  logger.add_sink(jsonl);

  // A small campaign: ~2 weeks at 12h cadence keeps this example snappy.
  core::StudyConfig config;
  config.ecosystem.seed = 7;
  config.ecosystem.responder_count = 120;
  config.ecosystem.alexa_domains = 10'000;
  config.ecosystem.certs_per_responder = 1;
  config.ecosystem.campaign_end =
      config.ecosystem.campaign_start + util::Duration::days(14);
  // The study writes timeline.csv / timeline.json / trace.json here itself.
  config.artifact_dir = outdir;
  config.timeline_window = util::Duration::hours(12);

  core::MustStapleStudy study(config);
  const core::ReadinessReport report = study.run();
  std::printf("%s", report.render().c_str());

  // Export the metrics the run accumulated.
  const std::string prom = obs::default_registry().render_prometheus();
  std::ofstream(outdir + "/metrics.prom") << prom;
  std::ofstream(outdir + "/metrics.json")
      << obs::default_registry().render_json() << "\n";

  std::printf(
      "\nwrote %s, %s/metrics.prom, %s/metrics.json,\n"
      "      %s/timeline.csv, %s/timeline.json, %s/trace.json "
      "(open in ui.perfetto.dev),\n"
      "      %s/profile.json, %s/profile.folded (feed to flamegraph.pl),\n"
      "      %s/resources.csv, %s/resources.json\n",
      jsonl_path.c_str(), outdir.c_str(), outdir.c_str(), outdir.c_str(),
      outdir.c_str(), outdir.c_str(), outdir.c_str(), outdir.c_str(),
      outdir.c_str(), outdir.c_str());
  std::printf("key counters:\n");
  for (const char* name :
       {"mustaple_net_fetch_total", "mustaple_loop_events_dispatched_total",
        "mustaple_scan_probes_total", "mustaple_scan_probes_usable_total",
        "mustaple_ca_ocsp_requests_total",
        "mustaple_ca_ocsp_cache_hits_total"}) {
    std::printf("  %-42s %llu\n", name,
                static_cast<unsigned long long>(
                    obs::default_registry().counter_value(name)));
  }
  logger.clear_sinks();
  return 0;
#endif
}
