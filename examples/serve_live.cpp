// Real-socket serving demo: one process serving the simulated PKI's three
// HTTP services over loopback TCP via net::SocketServer — the same handler
// objects the simulation uses, now answering curl:
//
//   curl "http://127.0.0.1:<ocsp-port>/<url-encoded base64 OCSPRequest>"
//   curl --data-binary @req.der -H 'Content-Type: application/ocsp-request'
//        http://127.0.0.1:<ocsp-port>/   (one line)
//   curl http://127.0.0.1:<crl-port>/ca.crl -o ca.crl
//   curl http://127.0.0.1:<web-port>/staple -o staple.der
//
// The demo issues one leaf, pre-generates its OCSP response, prefetches a
// staple into an Ideal-model web server, and serves all three listeners
// until --seconds elapse. SimTime is wall-anchored to the paper campaign's
// start date (the generated certificates are 2018-dated, so serving "now"
// means serving 2018-05-01 plus elapsed wall seconds).
//
// Each bound port is printed on its own line ("<name> listening on
// 127.0.0.1:<port>") and stdout is flushed before serving starts, so a
// harness can background this binary, read the ports, and curl mid-run —
// the CI serving-smoke job does exactly that. A ready-to-paste OCSP GET
// URL (percent-encoded per RFC 6960 Appendix A.1) is printed too.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "ca/authority.hpp"
#include "ca/crl_server.hpp"
#include "ca/responder.hpp"
#include "net/socket_server.hpp"
#include "ocsp/request.hpp"
#include "util/base64.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

namespace {

// RFC 6960 A.1: clients URL-encode the base64 request into the GET path.
std::string percent_encode_base64(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '+') {
      out += "%2B";
    } else if (c == '/') {
      out += "%2F";
    } else if (c == '=') {
      out += "%3D";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--seconds N]\n", argv[0]);
      return 2;
    }
  }

  // ---- The PKI: one CA, one pre-generated responder, one CRL server, one
  // Ideal-model web server with a prefetched staple.
  const util::SimTime base = util::make_time(2018, 5, 1, 12);
  util::Rng rng{2018};
  ca::CertificateAuthority authority("DemoCA", base - util::Duration::days(2000),
                                     rng);
  ca::OcspResponder responder(authority, ca::ResponderBehavior{},
                              "ocsp.demo.example", rng);
  ca::CrlServer crl_server(authority, "crl.demo.example");

  ca::LeafRequest leaf_request;
  leaf_request.domain = "www.demo.example";
  leaf_request.not_before = base - util::Duration::days(30);
  leaf_request.lifetime = util::Duration::days(365);
  leaf_request.must_staple = true;
  leaf_request.ocsp_urls = {"http://ocsp.demo.example/"};
  leaf_request.crl_urls = {"http://crl.demo.example/ca.crl"};
  const x509::Certificate leaf = authority.issue(leaf_request, rng);

  // The web server fetches its staple over the SIMULATED network (that is
  // the code being demonstrated: same objects, two transports).
  net::EventLoop loop(base - util::Duration::days(1));
  net::Network network(loop, 2018);
  responder.install(network);
  webserver::WebServerConfig web_config;
  web_config.software = webserver::Software::kIdeal;
  webserver::WebServer web("www.demo.example", authority.chain_for(leaf),
                           web_config, network);
  loop.run_until(base);
  web.start(base);  // Ideal model: prefetch the staple now

  // ---- Wall-anchored SimTime: base + elapsed wall seconds.
  const auto wall_start = std::chrono::steady_clock::now();
  auto clock = [base, wall_start] {
    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - wall_start);
    return base + util::Duration::secs(elapsed.count());
  };

  // ---- Three listeners, one socket server, shared worker pool.
  net::SocketServer server;
  const std::size_t ocsp_idx =
      server.add_listener("ocsp", 0, responder.wire_handler(clock));
  const std::size_t crl_idx =
      server.add_listener("crl", 0, crl_server.wire_handler(clock));
  const std::size_t web_idx =
      server.add_listener("web", 0, web.wire_handler(clock));
  const auto status = server.start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }

  const auto id =
      ocsp::CertId::for_certificate(leaf, authority.intermediate_cert());
  const std::string get_path =
      "/" + percent_encode_base64(
                util::base64_encode(ocsp::OcspRequest::single(id).encode_der()));

  std::printf("ocsp listening on 127.0.0.1:%u\n", server.port(ocsp_idx));
  std::printf("crl listening on 127.0.0.1:%u\n", server.port(crl_idx));
  std::printf("web listening on 127.0.0.1:%u\n", server.port(web_idx));
  std::printf("\ntry:\n");
  std::printf("  curl \"http://127.0.0.1:%u%s\" -o resp.der\n",
              server.port(ocsp_idx), get_path.c_str());
  std::printf("  curl http://127.0.0.1:%u/ca.crl -o ca.crl\n",
              server.port(crl_idx));
  std::printf("  curl http://127.0.0.1:%u/staple -o staple.der\n",
              server.port(web_idx));
  std::printf("  curl http://127.0.0.1:%u/\n", server.port(web_idx));
  std::printf("\nserving for %.0fs...\n", seconds);
  std::fflush(stdout);

  const auto deadline =
      wall_start + std::chrono::milliseconds(
                       static_cast<std::int64_t>(seconds * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const net::SocketServerStats stats = server.stats();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}
