// Quickstart: the 60-second tour of the library.
//
//  1. Stand up a CA and an OCSP responder on the simulated network.
//  2. Issue an OCSP Must-Staple certificate for a domain.
//  3. Serve it from a simulated web server with stapling enabled.
//  4. Visit it with a staple-respecting browser and a lax one.
//  5. Revoke the certificate and watch the verdicts change.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "browser/browser.hpp"
#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

int main() {
  const util::SimTime now = util::make_time(2018, 5, 1);
  util::Rng rng(1);

  // --- 1. A CA with an OCSP responder on the simulated network -----------
  net::EventLoop loop(now - util::Duration::days(1));
  net::Network network(loop, /*seed=*/1);
  ca::CertificateAuthority authority("Quickstart CA",
                                     now - util::Duration::days(1500), rng);
  ca::OcspResponder responder(authority, ca::ResponderBehavior{},
                              "ocsp.quickstart.example", rng);
  responder.install(network);

  x509::RootStore roots;  // the client's trust store
  roots.add(authority.root_cert());

  // --- 2. Issue a Must-Staple certificate --------------------------------
  ca::LeafRequest request;
  request.domain = "www.quickstart.example";
  request.not_before = now - util::Duration::days(1);
  request.lifetime = util::Duration::days(90);
  request.must_staple = true;  // OID 1.3.6.1.5.5.7.1.24
  request.ocsp_urls = {"http://ocsp.quickstart.example/"};
  const x509::Certificate leaf = authority.issue(request, rng);
  std::printf("issued %s, serial %s, must-staple=%s\n",
              leaf.subject().to_string().c_str(), leaf.serial_hex().c_str(),
              leaf.extensions().must_staple ? "true" : "false");

  // --- 3. A web server that staples --------------------------------------
  webserver::WebServerConfig config;
  config.software = webserver::Software::kIdeal;  // prefetches properly
  webserver::WebServer server("www.quickstart.example",
                              authority.chain_for(leaf), config, network);
  tls::TlsDirectory directory;
  server.install(directory);
  server.start(now - util::Duration::hours(1));
  loop.run_until(now);

  // --- 4. Two browsers visit ---------------------------------------------
  browser::BrowserProfile firefox;
  firefox.name = "Firefox 60";
  firefox.os = "Linux";
  firefox.respects_must_staple = true;
  browser::BrowserProfile chrome;
  chrome.name = "Chrome 66";
  chrome.os = "Linux";
  chrome.respects_must_staple = false;

  for (const auto* profile : {&firefox, &chrome}) {
    const auto visit = browser::visit(*profile, directory,
                                      "www.quickstart.example", roots, now);
    std::printf("%-12s -> %s (staple %s)\n", profile->name.c_str(),
                browser::to_string(visit.verdict),
                visit.staple_valid ? "valid" : "absent/invalid");
  }

  // --- 5. Revoke and revisit ---------------------------------------------
  authority.revoke(leaf.serial(), now, crl::ReasonCode::kKeyCompromise,
                   ca::RevocationPolicy{});
  // Let the server pick up a fresh (now Revoked) staple.
  loop.run_until(now + util::Duration::days(4));
  const util::SimTime later = now + util::Duration::days(4);

  std::printf("\nafter revocation:\n");
  for (const auto* profile : {&firefox, &chrome}) {
    const auto visit = browser::visit(*profile, directory,
                                      "www.quickstart.example", roots, later);
    std::printf("%-12s -> %s\n", profile->name.c_str(),
                browser::to_string(visit.verdict));
  }
  return 0;
}
