// Campaign timeline demo: a short multi-vantage scan campaign with two
// injected responder outages, read back entirely from the obs::Timeline —
// a per-window availability table, one sparkline per vantage point, and the
// pooled sparkline the full study appends to its readiness report. The
// campaign also runs under the annotation profiler and the resource
// monitor, so the same run shows WHERE the wall time went and what it cost
// the process.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/campaign_timeline [outdir]
// With an outdir, also writes timeline.csv, trace.json, profile.json,
// profile.folded, and resources.csv there.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
#if !MUSTAPLE_OBS_ENABLED
  (void)argc;
  (void)argv;
  std::fprintf(stderr,
               "campaign_timeline needs the obs layer; rebuild with "
               "-DMUSTAPLE_OBS=ON.\n");
  return 0;
#else
  const std::string outdir = argc > 1 ? argv[1] : "";

  // One simulated week, 60 responders, no scripted paper faults — we inject
  // our own outages so the dips in the output have known causes.
  measurement::EcosystemConfig config;
  config.seed = 42;
  config.responder_count = 60;
  config.alexa_domains = 5'000;
  config.certs_per_responder = 1;
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = config.campaign_start + util::Duration::days(7);
  config.apply_fault_schedule = false;

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);

  // Faults key on CANONICAL DNS names; aliases inherit their target's
  // outage (the paper's Comodo pattern), so canonicalize before scheduling.
  const net::DnsZone& dns = ecosystem.network().dns();

  // Outage 1: responder #0 goes dark everywhere for day 2. #0 is the Comodo
  // canonical host, so its whole CNAME/sibling cluster dips with it.
  {
    net::FaultRule rule;
    rule.canonical_host = dns.canonical_name(ecosystem.responders()[0].host);
    rule.mode = net::FaultMode::kTcpConnectFailure;
    rule.window_start = config.campaign_start + util::Duration::days(2);
    rule.window_end = config.campaign_start + util::Duration::days(3);
    ecosystem.network().faults().add(rule);
  }
  // Outage 2: responders #20-#24 serve HTTP 503, but only from Seoul, day 5.
  for (std::size_t r = 20; r <= 24; ++r) {
    net::FaultRule rule;
    rule.canonical_host = dns.canonical_name(ecosystem.responders()[r].host);
    rule.mode = net::FaultMode::kHttp503;
    rule.regions = {net::Region::kSeoul};
    rule.window_start = config.campaign_start + util::Duration::days(5);
    rule.window_end =
        config.campaign_start + util::Duration::days(5) + util::Duration::hours(12);
    ecosystem.network().faults().add(rule);
  }

  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  scan.validate_responses = false;

  // Timeline windows = scan steps; trace on for the Perfetto artifact.
  obs::Timeline timeline(config.campaign_start, scan.interval);
  obs::Timeline* previous_timeline = obs::install_timeline(&timeline);
  obs::TraceLog& trace_log = obs::default_trace_log();
  trace_log.reset();
  trace_log.enable(loop.now());
  for (net::Region region : net::all_regions()) {
    trace_log.set_track_name(static_cast<std::uint32_t>(region),
                             std::string("vantage:") + net::to_string(region));
  }
  trace_log.set_track_name(obs::TraceLog::kControlTrack, "simulator-control");

  // Profile + resource-monitor the campaign itself (pillar 6): the scanner
  // opens scan.campaign/scan.step/... scopes, and the monitor samples RSS
  // on a 50ms tick into its own registry.
  obs::default_profiler().reset();
  obs::ResourceMonitor::Options monitor_options;
  monitor_options.tick_ms = 50;
  obs::ResourceMonitor monitor(monitor_options);
  monitor.start();

  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();
  monitor.stop();
  timeline.flush(config.campaign_end);
  obs::install_timeline(previous_timeline);
  trace_log.disable();

  std::printf("Campaign timeline: %zu windows of %lldh\n\n",
              timeline.windows().size(),
              static_cast<long long>(timeline.window().seconds / 3600));

  // Per-window availability table, pooled over all vantage points.
  std::vector<std::string> headers = {"window (sim time)", "requests",
                                      "ok", "availability"};
  std::vector<std::vector<std::string>> rows;
  std::vector<double> pooled;
  for (const auto& window : timeline.windows()) {
    double requests = 0.0;
    double successes = 0.0;
    for (net::Region region : net::all_regions()) {
      const std::string labels =
          obs::canonical_labels({{"region", net::to_string(region)}});
      requests += obs::Timeline::counter_delta(
          window, "mustaple_scan_requests_total", labels);
      successes += obs::Timeline::counter_delta(
          window, "mustaple_scan_successes_total", labels);
    }
    if (requests <= 0.0) continue;
    const double pct = 100.0 * successes / requests;
    pooled.push_back(pct);
    rows.push_back({util::format_time(window.start),
                    util::format("%.0f", requests),
                    util::format("%.0f", successes),
                    util::format("%.2f%%", pct)});
  }
  std::printf("%s\n", util::render_table(headers, rows).c_str());

  // One sparkline per vantage point: the Seoul-only outage shows up in
  // exactly one of these.
  std::printf("availability per vantage point (one glyph per %lldh window):\n",
              static_cast<long long>(timeline.window().seconds / 3600));
  for (net::Region region : net::all_regions()) {
    const util::Series series = timeline.ratio_series(
        "mustaple_scan_successes_total", "mustaple_scan_requests_total",
        {{"region", net::to_string(region)}});
    double lo = 100.0;
    for (double y : series.y) lo = std::min(lo, y);
    std::printf("  %-10s [%s] min %.2f%%\n", net::to_string(region),
                util::sparkline(series.y).c_str(), lo);
  }
  std::printf("  %-10s [%s]\n", "pooled", util::sparkline(pooled).c_str());

  std::printf("\n%s", obs::default_profiler().summary(6).c_str());
  {
    const auto samples = monitor.samples();
    if (!samples.empty()) {
      std::printf("\npeak RSS %.1f MiB over %zu resource samples\n",
                  static_cast<double>(samples.back().usage.peak_rss_bytes) /
                      (1024.0 * 1024.0),
                  samples.size());
    }
  }

  if (!outdir.empty()) {
    std::ofstream(outdir + "/timeline.csv") << timeline.render_csv();
    std::ofstream(outdir + "/trace.json") << trace_log.render_chrome_trace();
    std::ofstream(outdir + "/profile.json")
        << obs::default_profiler().render_json();
    std::ofstream(outdir + "/profile.folded")
        << obs::default_profiler().render_folded();
    std::ofstream(outdir + "/resources.csv") << monitor.render_csv();
    std::printf("\nwrote %s/{timeline.csv, trace.json, profile.json, "
                "profile.folded, resources.csv}\n"
                "(trace.json opens in ui.perfetto.dev; profile.folded feeds "
                "flamegraph.pl)\n",
                outdir.c_str());
  }
  std::printf("\ntrace: %zu events collected, %zu dropped (capacity %zu)\n",
              trace_log.events().size(), trace_log.dropped(),
              trace_log.capacity());
  trace_log.reset();
  return 0;
#endif
}
