// browser_compat: the §6 browser experiment as a runnable tool. Serves a
// Must-Staple certificate WITHOUT a staple (the paper's Apache with
// SSLUseStapling off) and reports every browser profile's behaviour; then
// repeats with a working staple for contrast.
#include <cstdio>

#include "analysis/browser_suite.hpp"
#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

int main() {
  std::printf("=== experiment 1: Must-Staple certificate, staple withheld ===\n\n");
  const analysis::BrowserSuiteResult suite = analysis::run_browser_suite(42);
  std::printf("%-24s %-10s %-22s %-12s\n", "browser", "asks?", "verdict",
              "protected?");
  for (const auto& row : suite.rows) {
    std::printf("%-24s %-10s %-22s %-12s\n",
                row.profile.display_name().c_str(),
                row.requested_ocsp_response ? "yes" : "no",
                browser::to_string(row.verdict_without_staple),
                row.respected_must_staple ? "YES" : "no");
  }
  std::printf("\n%zu/%zu browsers respect OCSP Must-Staple.\n\n",
              suite.count_respecting(), suite.rows.size());

  // Experiment 2: same domain, healthy stapling -> everyone accepts.
  std::printf("=== experiment 2: same certificate, valid staple served ===\n\n");
  const util::SimTime now = util::make_time(2018, 5, 15);
  util::Rng rng(42);
  net::EventLoop loop(now - util::Duration::days(1));
  net::Network network(loop, 42);
  ca::CertificateAuthority authority("CompatCA", now - util::Duration::days(900),
                                     rng);
  ca::OcspResponder responder(authority, ca::ResponderBehavior{},
                              "ocsp.compat.example", rng);
  responder.install(network);
  x509::RootStore roots;
  roots.add(authority.root_cert());

  ca::LeafRequest request;
  request.domain = "compat.example";
  request.not_before = now - util::Duration::days(10);
  request.lifetime = util::Duration::days(90);
  request.must_staple = true;
  request.ocsp_urls = {"http://ocsp.compat.example/"};
  webserver::WebServerConfig config;
  config.software = webserver::Software::kIdeal;
  webserver::WebServer server("compat.example",
                              authority.chain_for(authority.issue(request, rng)),
                              config, network);
  tls::TlsDirectory directory;
  server.install(directory);
  server.start(now - util::Duration::hours(1));
  loop.run_until(now);

  std::size_t accepts = 0;
  for (const auto& profile : browser::standard_profiles()) {
    const auto visit =
        browser::visit(profile, directory, "compat.example", roots, now);
    if (visit.verdict == browser::Verdict::kAccept) ++accepts;
  }
  std::printf("with a valid staple, %zu/%zu browsers accept with fresh revocation info.\n",
              accepts, browser::standard_profiles().size());
  std::printf("\nconclusion (paper section 6): clients already solicit staples; only the\n"
              "hard-fail policy is missing — 'the additional coding work necessary to\n"
              "support OCSP Must-Staple is likely not too significant.'\n");
  return 0;
}
