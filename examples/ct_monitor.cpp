// ct_monitor: a Certificate Transparency monitor in miniature. Follows a
// simulated CT log across submissions, verifies every published tree head
// against the previous one (consistency proofs), spot-checks entry
// inclusion, and flags Must-Staple certificates as they appear in the
// stream — the CT-side view of the paper's §4 deployment measurement.
#include <cstdio>

#include "ca/authority.hpp"
#include "ct/log.hpp"

using namespace mustaple;

int main() {
  const util::SimTime start = util::make_time(2018, 4, 1);
  util::Rng rng(7);
  ca::CertificateAuthority lets_encrypt("Let's Encrypt",
                                        start - util::Duration::days(900), rng);
  ca::CertificateAuthority comodo("Comodo", start - util::Duration::days(900),
                                  rng);
  ct::CtLog log("sim-log", rng);

  ct::SignedTreeHead previous_sth = log.tree_head(start);
  std::size_t must_staple_seen = 0;
  std::size_t heads_verified = 0;

  std::printf("monitoring log '%s' (id %s...)\n\n", log.name().c_str(),
              util::to_hex(log.log_id()).substr(0, 16).c_str());

  for (int day = 0; day < 14; ++day) {
    const util::SimTime now = start + util::Duration::days(day);
    // A day's worth of issuance: mostly plain certs, the odd Must-Staple
    // one (the paper's 0.02%, exaggerated here so the demo shows some).
    const int batch = 5 + static_cast<int>(rng.uniform(10));
    for (int i = 0; i < batch; ++i) {
      ca::CertificateAuthority& issuer =
          rng.chance(0.6) ? lets_encrypt : comodo;
      ca::LeafRequest request;
      request.domain = "site-" + std::to_string(day) + "-" +
                       std::to_string(i) + ".example";
      request.not_before = now;
      request.lifetime = util::Duration::days(90);
      request.must_staple = rng.chance(0.05);
      request.ocsp_urls = {"http://ocsp.example/"};
      const x509::Certificate cert = issuer.issue(request, rng);
      const auto sct = log.submit(cert, now);
      if (!ct::CtLog::verify_sct(cert, sct, log.public_key())) {
        std::printf("!! day %d: log returned a BAD SCT\n", day);
      }
      if (cert.extensions().must_staple) {
        ++must_staple_seen;
        std::printf("day %2d: Must-Staple certificate logged: %-28s (%s)\n",
                    day, cert.subject().common_name.c_str(),
                    issuer.name() == "Let's Encrypt" ? "Let's Encrypt"
                                                     : "Comodo");
      }
    }

    // Daily audit: new tree head must be consistent with yesterday's.
    const ct::SignedTreeHead sth = log.tree_head(now);
    if (!ct::CtLog::verify_tree_head(sth, log.public_key())) {
      std::printf("!! day %d: tree head signature invalid\n", day);
      continue;
    }
    if (previous_sth.tree_size > 0) {
      const auto proof =
          log.consistency_proof(previous_sth.tree_size, sth.tree_size);
      if (!ct::MerkleTree::verify_consistency(
              previous_sth.tree_size, sth.tree_size, previous_sth.root_hash,
              sth.root_hash, proof)) {
        std::printf("!! day %d: LOG EQUIVOCATED (consistency proof failed)\n",
                    day);
        continue;
      }
    }
    ++heads_verified;
    // Spot-check a random entry's inclusion.
    const std::uint64_t pick = rng.uniform(sth.tree_size);
    auto cert = log.entry(pick);
    if (!cert.ok() || !log.verify_entry_inclusion(cert.value(), pick, sth)) {
      std::printf("!! day %d: inclusion proof failed for entry %llu\n", day,
                  static_cast<unsigned long long>(pick));
    }
    previous_sth = sth;
  }

  std::printf(
      "\n14 days monitored: %zu entries, %zu tree heads verified "
      "consistent,\n%zu Must-Staple certificates observed in the stream.\n",
      static_cast<std::size_t>(log.size()), heads_verified, must_staple_seen);
  return 0;
}
