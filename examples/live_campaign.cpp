// Live introspection demo (pillar 7): run a readiness study with the
// IntrospectionServer serving real loopback HTTP for the campaign's
// duration, so an operator (or CI) can scrape the process while it works:
//
//   curl localhost:<port>/metrics   # Prometheus text: campaign + resources
//   curl localhost:<port>/healthz   # liveness
//   curl localhost:<port>/statusz   # scan progress, RSS, allocation, phases
//
// Usage: live_campaign [--port N] [--linger SECONDS] [outdir]
//   --port N          bind 127.0.0.1:N (default 0 = kernel-assigned)
//   --linger SECONDS  keep serving the finished campaign's state this long
//                     after the study returns (default 0)
//   outdir            also write the study's artifacts there ("" = none)
//
// The bound port is printed on a line of its own ("listening on
// 127.0.0.1:<port>") and stdout is flushed BEFORE the campaign starts, so a
// harness can background this binary, read the port, and curl mid-run —
// that is exactly what the CI introspection-smoke job does.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "core/study.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
  int port = 0;
  int linger_seconds = 0;
  std::string outdir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_seconds = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      outdir = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--linger SECONDS] [outdir]\n",
                   argv[0]);
      return 2;
    }
  }

  // A scan-only campaign sized to run for a few wall-clock seconds, so
  // there is a meaningful window in which to scrape it live.
  core::StudyConfig config;
  config.ecosystem.seed = 11;
  config.ecosystem.responder_count = 150;
  config.ecosystem.alexa_domains = 10'000;
  config.ecosystem.certs_per_responder = 2;
  config.ecosystem.campaign_end =
      config.ecosystem.campaign_start + util::Duration::days(42);
  config.scan.interval = util::Duration::hours(6);
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  config.artifact_dir = outdir;
  config.introspection_port = port;

  core::MustStapleStudy study(config);
  const std::uint16_t bound = study.start_introspection();
  if (bound == 0) {
    std::fprintf(stderr, "introspection server failed to bind port %d\n",
                 port);
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", bound);
  std::printf("try: curl -s localhost:%u/statusz\n", bound);
  std::fflush(stdout);

  const core::ReadinessReport report = study.run();
  std::printf("%s", report.render().c_str());
  std::fflush(stdout);

  if (linger_seconds > 0) {
    std::printf("\ncampaign done; serving final state for %ds more on "
                "127.0.0.1:%u\n",
                linger_seconds, bound);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
  }
  return 0;
}
