// Live introspection demo (pillar 7): run a readiness study with the
// IntrospectionServer serving real loopback HTTP for the campaign's
// duration, so an operator (or CI) can scrape the process while it works:
//
//   curl localhost:<port>/metrics   # Prometheus text: campaign + resources
//   curl localhost:<port>/healthz   # liveness
//   curl localhost:<port>/statusz   # scan progress, RSS, allocation, phases
//
// Usage: live_campaign [--port N] [--linger SECONDS] [--rss-budget-mb N]
//                      [--inject-crash] [outdir]
//   --port N           bind 127.0.0.1:N (default 0 = kernel-assigned)
//   --linger SECONDS   keep serving the finished campaign's state this long
//                      after the study returns (default 0)
//   --rss-budget-mb N  arm the proc.rss_budget critical health check with an
//                      N MiB ceiling (0 = off); a breach flips /healthz to 503
//   --inject-crash     register a fault.injected_abort critical check that
//                      breaches mid-scan and abort on it, so the flight
//                      recorder's SIGABRT handler writes postmortem.{txt,json}
//                      into outdir (the CI injected-fault job's hook)
//   outdir             also write the study's artifacts there ("" = none)
//
// The bound port is printed on a line of its own ("listening on
// 127.0.0.1:<port>") and stdout is flushed BEFORE the campaign starts, so a
// harness can background this binary, read the port, and curl mid-run —
// that is exactly what the CI introspection-smoke job does.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "core/study.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
  int port = 0;
  int linger_seconds = 0;
  long rss_budget_mb = 0;
  bool inject_crash = false;
  std::string outdir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_seconds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rss-budget-mb") == 0 && i + 1 < argc) {
      rss_budget_mb = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--inject-crash") == 0) {
      inject_crash = true;
    } else if (argv[i][0] != '-') {
      outdir = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--linger SECONDS] "
                   "[--rss-budget-mb N] [--inject-crash] [outdir]\n",
                   argv[0]);
      return 2;
    }
  }

  // A scan-only campaign sized to run for a few wall-clock seconds, so
  // there is a meaningful window in which to scrape it live.
  core::StudyConfig config;
  config.ecosystem.seed = 11;
  config.ecosystem.responder_count = 150;
  config.ecosystem.alexa_domains = 10'000;
  config.ecosystem.certs_per_responder = 2;
  config.ecosystem.campaign_end =
      config.ecosystem.campaign_start + util::Duration::days(42);
  config.scan.interval = util::Duration::hours(6);
  config.run_consistency_audit = false;
  config.run_browser_suite = false;
  config.run_webserver_suite = false;
  config.artifact_dir = outdir;
  config.introspection_port = port;
  // Hour-long timeline windows make the availability SLO's 1x/6x lookbacks
  // literal 1h/6h sim windows.
  config.timeline_window = util::Duration::hours(1);
  if (rss_budget_mb > 0) {
    config.rss_budget_mb = static_cast<std::uint64_t>(rss_budget_mb);
  }
  config.abort_on_critical = inject_crash;

  core::MustStapleStudy study(config);
#if MUSTAPLE_OBS_ENABLED
  if (inject_crash) {
    // Breaches once the campaign is well under way (~25k probes in), so the
    // resulting postmortem ring holds real scan-phase events.
    study.health().add_check(
        "fault.injected_abort", obs::HealthSeverity::kCritical, [] {
          std::uint64_t requests = 0;
          obs::default_registry().visit_counters(
              [&](const std::string& name, const std::string&,
                  std::uint64_t value) {
                if (name == "mustaple_scan_requests_total") requests += value;
              });
          obs::HealthCheckResult result;
          result.ok = requests <= 25'000;
          if (!result.ok) {
            result.detail = "injected fault: " + std::to_string(requests) +
                            " scan requests issued";
          }
          return result;
        });
  }
#endif
  const std::uint16_t bound = study.start_introspection();
  if (bound == 0) {
    std::fprintf(stderr, "introspection server failed to bind port %d\n",
                 port);
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", bound);
  std::printf("try: curl -s localhost:%u/statusz\n", bound);
  std::fflush(stdout);

  const core::ReadinessReport report = study.run();
  std::printf("%s", report.render().c_str());
  std::fflush(stdout);

  if (linger_seconds > 0) {
    std::printf("\ncampaign done; serving final state for %ds more on "
                "127.0.0.1:%u\n",
                linger_seconds, bound);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
  }
  return 0;
}
