// webserver_staple_sim: watch Apache, Nginx, and the paper's recommended
// "Ideal" server live through an OCSP responder outage, minute by minute.
// Demonstrates §7.2 / Table 3 and the §8 recommendation: prefetch + retain
// rides out outages shorter than the response validity period.
#include <cstdio>

#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

namespace {

const char* staple_state(const tls::HandshakeObservation& obs) {
  if (!obs.staple_present) return "none";
  if (!obs.staple_check) return "unchecked";
  switch (obs.staple_check->outcome) {
    case ocsp::CheckOutcome::kOk:
      return "VALID";
    case ocsp::CheckOutcome::kExpired:
      return "EXPIRED";
    case ocsp::CheckOutcome::kNotSuccessful:
      return "error-response";
    default:
      return "invalid";
  }
}

}  // namespace

int main() {
  const util::SimTime start = util::make_time(2018, 6, 1);
  util::Rng rng(3);
  net::EventLoop loop(start);
  net::Network network(loop, 3);
  ca::CertificateAuthority authority("SimCA", start - util::Duration::days(900),
                                     rng);
  // 4-hour validity so the whole story fits in a day.
  ca::ResponderBehavior behavior;
  behavior.pre_generate = false;
  behavior.validity = util::Duration::hours(4);
  behavior.this_update_margin = util::Duration::secs(0);
  ca::OcspResponder responder(authority, behavior, "ocsp.sim.example", rng);
  responder.install(network);
  x509::RootStore roots;
  roots.add(authority.root_cert());

  tls::TlsDirectory directory;
  std::vector<std::unique_ptr<webserver::WebServer>> servers;
  for (auto software : {webserver::Software::kApache,
                        webserver::Software::kNginx,
                        webserver::Software::kIdeal}) {
    const std::string domain =
        std::string(webserver::to_string(software)) + ".sim.example";
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = start - util::Duration::days(5);
    request.lifetime = util::Duration::days(90);
    request.must_staple = true;
    request.ocsp_urls = {"http://ocsp.sim.example/"};
    webserver::WebServerConfig config;
    config.software = software;
    servers.push_back(std::make_unique<webserver::WebServer>(
        domain, authority.chain_for(authority.issue(request, rng)), config,
        network));
    servers.back()->install(directory);
    servers.back()->start(start);
  }

  // Responder dies at t+2h, comes back at t+7h.
  {
    net::FaultRule outage;
    outage.canonical_host = "ocsp.sim.example";
    outage.mode = net::FaultMode::kTcpConnectFailure;
    outage.window_start = start + util::Duration::hours(2);
    outage.window_end = start + util::Duration::hours(7);
    network.faults().add(outage);
  }

  std::printf("responder outage from t+2h to t+7h; staple validity 4h\n\n");
  std::printf("%-6s %-22s %-22s %-22s\n", "t", "apache", "nginx", "ideal");
  for (int minutes = 30; minutes <= 10 * 60; minutes += 30) {
    const util::SimTime when = start + util::Duration::minutes(minutes);
    loop.run_until(when);
    std::printf("+%3dm ", minutes);
    for (const auto& server : servers) {
      tls::ClientHello hello;
      hello.server_name = server->domain();
      hello.status_request = true;
      tls::ServerHello server_hello;
      const auto obs =
          tls::observe_handshake(directory, hello, roots, when, server_hello);
      std::printf(" %-21s", staple_state(obs));
    }
    std::printf("\n");
  }
  std::printf(
      "\nWhat to look for (Table 3): Apache drops its staple at the first\n"
      "failed refresh; Nginx keeps serving the old response until it expires;\n"
      "Ideal prefetches, retains on error, and recovers first.\n");
  return 0;
}
