// crl_ocsp_audit: the §5.4 consistency check as a standalone tool. Builds a
// revoked population, downloads every CA's CRL over the simulated network,
// queries the matching OCSP responders, and reports status / time / reason
// disagreements — the checks the paper's authors ran before responsibly
// disclosing to five CAs.
//
// Usage: crl_ocsp_audit [revoked_population]
#include <cstdio>
#include <cstdlib>

#include "measurement/consistency.hpp"
#include "measurement/ecosystem.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
  measurement::EcosystemConfig config;
  config.seed = 11;
  config.responder_count = 200;
  config.alexa_domains = 10000;

  measurement::ConsistencyConfig audit_config;
  audit_config.revoked_population =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);

  std::printf("auditing %zu revoked certificates across %zu CAs...\n\n",
              audit_config.revoked_population, ecosystem.authority_count());
  util::Rng rng(config.seed * 31 + 7);
  measurement::ConsistencyAudit audit(ecosystem, audit_config);
  const measurement::ConsistencyReport report = audit.run(rng);

  std::printf("collected %zu/%zu OCSP responses; %zu CRLs downloaded\n\n",
              report.responses_collected, report.probed,
              report.crls_downloaded);

  if (report.table1.empty()) {
    std::printf("no status discrepancies found\n");
  } else {
    std::printf("STATUS DISCREPANCIES (certificates revoked per CRL, but OCSP says otherwise):\n");
    for (const auto& row : report.table1) {
      std::printf("  %-34s unknown=%zu good=%zu revoked=%zu  <-- would be reported to the CA\n",
                  row.ocsp_url.c_str(), row.answered_unknown,
                  row.answered_good, row.answered_revoked);
    }
  }

  std::printf("\nREVOCATION TIMES: %zu/%zu pairs differ (%zu with OCSP earlier); worst lag %.1f days\n",
              report.time_differing, report.time_compared,
              report.time_negative,
              report.max_positive_delta_seconds / 86400.0);
  std::printf("REVOCATION REASONS: %zu/%zu differ; %zu are CRL-has-reason/OCSP-does-not\n",
              report.reason_differing, report.reason_compared,
              report.reason_crl_only);
  return 0;
}
