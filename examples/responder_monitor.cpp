// responder_monitor: a miniature version of the paper's measurement client.
// Builds a small ecosystem of OCSP responders with assorted pathologies,
// probes them from all six vantage points for a simulated week, and prints
// a per-responder health report — exactly the §5 workflow, at a glance.
//
// Usage: responder_monitor [seed]
#include <cstdio>
#include <cstdlib>

#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"

using namespace mustaple;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  measurement::EcosystemConfig config;
  config.seed = seed;
  config.responder_count = 120;
  config.alexa_domains = 10000;
  config.certs_per_responder = 2;
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 5, 2);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);

  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  measurement::HourlyScanner scanner(ecosystem, scan);
  std::printf("probing %zu responders from %zu vantage points, one simulated week...\n\n",
              ecosystem.responders().size(), net::kRegionCount);
  scanner.run();

  std::printf("%-42s %9s %9s %8s\n", "responder", "requests", "success%",
              "usable%");
  std::size_t unhealthy = 0;
  for (std::size_t r = 0; r < scanner.responder_count(); ++r) {
    std::size_t requests = 0;
    std::size_t successes = 0;
    std::size_t usable = 0;
    for (net::Region region : net::all_regions()) {
      const auto& stats = scanner.stats(r, region);
      requests += stats.requests;
      successes += stats.http_successes;
      usable += stats.usable_responses;
    }
    if (requests == 0) continue;
    const double success_pct =
        100.0 * static_cast<double>(successes) / static_cast<double>(requests);
    const double usable_pct =
        100.0 * static_cast<double>(usable) / static_cast<double>(requests);
    // Print only the interesting (unhealthy) responders, like a monitor.
    if (success_pct < 99.5 || usable_pct < 99.0) {
      ++unhealthy;
      std::printf("%-42s %9zu %8.1f%% %7.1f%%\n",
                  ecosystem.responders()[r].host.c_str(), requests,
                  success_pct, usable_pct);
    }
  }
  std::printf(
      "\n%zu of %zu responders showed degraded availability or response "
      "quality\n",
      unhealthy, scanner.responder_count());
  std::printf("responders with >=1 outage: %zu; never reachable: %zu\n",
              scanner.responders_with_outage(),
              scanner.responders_never_reachable());
  return 0;
}
